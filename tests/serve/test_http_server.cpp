// HTTP layer: the request parser as a pure function over a byte buffer
// (the malformed-input matrix needs no sockets), response rendering, and
// one real-socket round trip through HttpServer::serve.
#include "serve/http_server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/stop_token.h"

namespace ides {
namespace {

HttpParseResult parse(const std::string& buffer, HttpRequest& out,
                      const HttpLimits& limits = {}) {
  return parseHttpRequest(buffer, out, limits);
}

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequest request;
  const std::string raw = "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";
  const HttpParseResult result = parse(raw, request);
  ASSERT_EQ(result.status, HttpParseStatus::Done);
  EXPECT_EQ(result.consumed, raw.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_EQ(request.query, "");
  EXPECT_EQ(request.body, "");
  ASSERT_EQ(request.headers.size(), 1u);
  EXPECT_EQ(request.headers[0].first, "Host");
  EXPECT_EQ(request.headers[0].second, "localhost");
}

TEST(HttpParser, SplitsTargetAtQuery) {
  HttpRequest request;
  const HttpParseResult result =
      parse("GET /jobs?state=done&k=v HTTP/1.1\r\n\r\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Done);
  EXPECT_EQ(request.target, "/jobs?state=done&k=v");
  EXPECT_EQ(request.path, "/jobs");
  EXPECT_EQ(request.query, "state=done&k=v");
}

TEST(HttpParser, ReadsBodyByContentLength) {
  HttpRequest request;
  const std::string raw =
      "POST /jobs HTTP/1.1\r\nContent-Length: 16\r\n\r\n{\"type\": \"bad\"}\n";
  const HttpParseResult result = parse(raw, request);
  ASSERT_EQ(result.status, HttpParseStatus::Done);
  EXPECT_EQ(result.consumed, raw.size());
  EXPECT_EQ(request.body, "{\"type\": \"bad\"}\n");
}

TEST(HttpParser, NeedsMoreForEveryStrictPrefix) {
  const std::string raw =
      "POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
  for (std::size_t cut = 0; cut < raw.size(); ++cut) {
    HttpRequest request;
    const HttpParseResult result = parse(raw.substr(0, cut), request);
    EXPECT_EQ(result.status, HttpParseStatus::NeedMore)
        << "prefix of " << cut << " bytes";
  }
  HttpRequest request;
  EXPECT_EQ(parse(raw, request).status, HttpParseStatus::Done);
}

TEST(HttpParser, PipelinedRequestLeavesUnconsumedBytes) {
  const std::string one = "GET /healthz HTTP/1.1\r\n\r\n";
  HttpRequest request;
  const HttpParseResult result = parse(one + one, request);
  ASSERT_EQ(result.status, HttpParseStatus::Done);
  // The server treats consumed < buffer size as pipelining and rejects it;
  // the parser just reports the boundary.
  EXPECT_EQ(result.consumed, one.size());
}

TEST(HttpParser, RejectsMalformedRequestLine) {
  for (const char* raw : {
           "GARBAGE\r\n\r\n",                        // no spaces at all
           "GET /healthz\r\n\r\n",                   // missing version
           "GET  /healthz HTTP/1.1\r\n\r\n",         // extra space
           "GET healthz HTTP/1.1\r\n\r\n",           // target not absolute
           "get /healthz HTTP/1.1\r\n\r\n",          // lowercase method
           " /healthz HTTP/1.1\r\n\r\n",             // empty method
       }) {
    HttpRequest request;
    const HttpParseResult result = parse(raw, request);
    EXPECT_EQ(result.status, HttpParseStatus::Bad) << raw;
    EXPECT_EQ(result.errorStatus, 400) << raw;
  }
}

TEST(HttpParser, RejectsLoneLfDialect) {
  HttpRequest request;
  const HttpParseResult result = parse("GET / HTTP/1.1\n\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 400);
}

TEST(HttpParser, RejectsUnsupportedVersion) {
  HttpRequest request;
  const HttpParseResult result =
      parse("GET /healthz HTTP/2.0\r\n\r\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 505);
}

TEST(HttpParser, RejectsOversizedRequestLine) {
  HttpRequest request;
  const std::string target = "/" + std::string(5000, 'a');
  const HttpParseResult result =
      parse("GET " + target + " HTTP/1.1\r\n\r\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 414);
}

TEST(HttpParser, RejectsTooManyHeaders) {
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 65; ++i) {
    raw += "X-H" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  HttpRequest request;
  const HttpParseResult result = parse(raw, request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 431);
}

TEST(HttpParser, RejectsOversizedHeaderBlockEvenWithoutTerminator) {
  // An attacker streaming an endless header line must be cut off before
  // the blank line ever arrives.
  HttpRequest request;
  const std::string raw =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(17000, 'a');
  const HttpParseResult result = parse(raw, request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 431);
}

TEST(HttpParser, RejectsBadContentLength) {
  // Note "1 2": inner whitespace survives the value trim and must fail.
  for (const char* value : {"abc", "-1", "0x10", "1 2", "", "1e3"}) {
    HttpRequest request;
    const HttpParseResult result = parse(
        std::string("POST / HTTP/1.1\r\nContent-Length: ") + value +
            "\r\n\r\n",
        request);
    EXPECT_EQ(result.status, HttpParseStatus::Bad) << value;
    EXPECT_EQ(result.errorStatus, 400) << value;
  }
}

TEST(HttpParser, RejectsOversizedBodyWith413) {
  HttpRequest request;
  const HttpParseResult result = parse(
      "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 413);
}

TEST(HttpParser, RejectsConflictingContentLengths) {
  HttpRequest request;
  const HttpParseResult result = parse(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
      request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 400);
}

TEST(HttpParser, AcceptsDuplicateEqualContentLengths) {
  HttpRequest request;
  const HttpParseResult result = parse(
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}",
      request);
  ASSERT_EQ(result.status, HttpParseStatus::Done);
  EXPECT_EQ(request.body, "{}");
}

TEST(HttpParser, RejectsTransferEncoding) {
  HttpRequest request;
  const HttpParseResult result = parse(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 501);
}

TEST(HttpParser, RejectsWhitespaceInHeaderName) {
  HttpRequest request;
  const HttpParseResult result =
      parse("GET / HTTP/1.1\r\nBad Name: v\r\n\r\n", request);
  ASSERT_EQ(result.status, HttpParseStatus::Bad);
  EXPECT_EQ(result.errorStatus, 400);
}

TEST(HttpRequestTest, HeaderLookupIsCaseInsensitive) {
  HttpRequest request;
  ASSERT_EQ(parse("POST / HTTP/1.1\r\nContent-Type: text/plain\r\n\r\n",
                  request)
                .status,
            HttpParseStatus::Done);
  ASSERT_NE(request.header("content-TYPE"), nullptr);
  EXPECT_EQ(*request.header("content-TYPE"), "text/plain");
  EXPECT_EQ(request.header("X-Missing"), nullptr);
}

TEST(HttpResponseTest, RenderIncludesStatusLengthAndClose) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\": \"no\"}\n";
  const std::string raw = renderHttpResponse(response);
  EXPECT_NE(raw.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 16\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(raw.find("\r\n\r\n{\"error\": \"no\"}\n"), std::string::npos);
}

TEST(HttpResponseTest, StatusReasons) {
  EXPECT_STREQ(httpStatusReason(202), "Accepted");
  EXPECT_STREQ(httpStatusReason(409), "Conflict");
  EXPECT_STREQ(httpStatusReason(503), "Service Unavailable");
  EXPECT_STREQ(httpStatusReason(999), "Unknown");
}

/// Raw client for the round-trip test: send `raw`, read to EOF.
std::string exchange(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0),
            static_cast<ssize_t>(raw.size()));
  std::string reply;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(HttpServerTest, SocketRoundTripAndStop) {
  HttpServer server("127.0.0.1", 0);  // ephemeral port
  ASSERT_GT(server.port(), 0);

  StopToken stop;
  std::thread loop([&] {
    server.serve(
        [](const HttpRequest& request) {
          HttpResponse response;
          response.body = "{\"echo\": \"" + request.path + "\"}\n";
          return response;
        },
        &stop);
  });

  const std::string ok =
      exchange(server.port(), "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(ok.find("{\"echo\": \"/ping\"}"), std::string::npos);

  const std::string bad = exchange(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);

  // Two pipelined requests on one connection: rejected, not half-served.
  const std::string pipelined = exchange(
      server.port(),
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  EXPECT_NE(pipelined.find("HTTP/1.1 400"), std::string::npos);

  stop.requestStop();
  loop.join();
  EXPECT_EQ(server.requestsServed(), 3u);
}

}  // namespace
}  // namespace ides
