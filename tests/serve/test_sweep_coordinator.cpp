// SweepCoordinator: the single-arbiter lease protocol behind the HTTP
// transport. Registration (idempotent, spec-conflict-checked), claim /
// renew / release / complete lifecycle, steady-clock lease expiry, record
// validation at the completion boundary, and — the invariant everything
// else exists for — a manifest byte-identical to the file transport's and
// a merged result byte-identical to the single-process run.
#include "serve/sweep_coordinator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "store/sweep_store.h"
#include "store/work_queue.h"

namespace ides {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_coord_" + name;
  fs::remove_all(dir);
  return dir;
}

/// A synthetic complete record for a manifest item — the coordinator
/// validates documents, it does not re-run instances, so protocol tests
/// need no optimizer work.
std::string syntheticRecord(const SweepManifest& manifest,
                            std::size_t index) {
  InstanceOutcome outcome;
  outcome.hasReport = false;
  outcome.extras.add("echo", static_cast<double>(index));
  return renderSweepRecord(manifest.items[index].fingerprint,
                           manifest.suiteName, manifest.items[index].id,
                           outcome);
}

TEST(SweepCoordinatorTest, CreateValidatesRegistersAndIsIdempotent) {
  SweepCoordinator coordinator(freshDir("create"));
  EXPECT_THROW(coordinator.create("bad key!", "quality", "smoke"),
               std::invalid_argument);
  EXPECT_THROW(coordinator.create("k", "mystery", "smoke"),
               std::invalid_argument);
  EXPECT_THROW(coordinator.create("k", "quality", "galactic"),
               std::invalid_argument);
  EXPECT_FALSE(coordinator.exists("k"));

  coordinator.create("k", "quality", "smoke");
  EXPECT_TRUE(coordinator.exists("k"));
  coordinator.create("k", "quality", "smoke");  // same spec: a no-op
  EXPECT_THROW(coordinator.create("k", "quality", "full"),
               std::invalid_argument);  // same key, different spec
  EXPECT_THROW((void)coordinator.status("other"), std::invalid_argument);
  ASSERT_EQ(coordinator.keys().size(), 1u);
  EXPECT_EQ(coordinator.keys()[0], "k");
}

TEST(SweepCoordinatorTest, ManifestIsByteIdenticalToFileTransport) {
  SweepCoordinator coordinator(freshDir("manifest"));
  coordinator.create("k", "quality", "smoke");

  const SweepScale scale = sweepScaleNamed("smoke");
  const InstanceSuite suite = namedSweep("quality", scale);
  const std::string reference =
      manifestJson(makeManifest("quality", scale, suite));
  EXPECT_EQ(coordinator.manifestText("k"), reference);
  // And it round-trips through the parser a worker uses.
  const SweepManifest parsed = parseManifestJson(coordinator.manifestText("k"));
  EXPECT_EQ(parsed.sweep, "quality");
  EXPECT_FALSE(parsed.items.empty());
}

TEST(SweepCoordinatorTest, ClaimLifecycleIsExclusivePerFingerprint) {
  SweepCoordinator coordinator(freshDir("lifecycle"));
  coordinator.create("k", "quality", "smoke");
  const SweepManifest manifest =
      parseManifestJson(coordinator.manifestText("k"));

  const CoordinatorClaim first = coordinator.claim("k", "w1", 600.0);
  ASSERT_EQ(first.kind, CoordinatorClaim::Kind::Claimed);
  EXPECT_EQ(first.item.fingerprint, manifest.items[0].fingerprint);

  const CoordinatorClaim second = coordinator.claim("k", "w2", 600.0);
  ASSERT_EQ(second.kind, CoordinatorClaim::Kind::Claimed);
  EXPECT_NE(second.item.fingerprint, first.item.fingerprint);

  // Renewal is owner-only; release by a non-holder is a no-op.
  EXPECT_TRUE(coordinator.renew("k", "w1", first.item.fingerprint));
  EXPECT_FALSE(coordinator.renew("k", "w2", first.item.fingerprint));
  coordinator.release("k", "w2", first.item.fingerprint);
  EXPECT_TRUE(coordinator.renew("k", "w1", first.item.fingerprint));

  // A real release frees the item for the next claimer.
  coordinator.release("k", "w1", first.item.fingerprint);
  const CoordinatorClaim retaken = coordinator.claim("k", "w3", 600.0);
  ASSERT_EQ(retaken.kind, CoordinatorClaim::Kind::Claimed);
  EXPECT_EQ(retaken.item.fingerprint, first.item.fingerprint);

  CoordinatorSweepStatus status = coordinator.status("k");
  EXPECT_EQ(status.total, manifest.items.size());
  EXPECT_EQ(status.recorded, 0u);
  EXPECT_EQ(status.leased, 2u);
  EXPECT_FALSE(status.done);
}

TEST(SweepCoordinatorTest, ExpiredLeasesAreReassignedAndRenewalLoses) {
  SweepCoordinator coordinator(freshDir("expiry"));
  coordinator.create("k", "quality", "smoke");

  const CoordinatorClaim doomed = coordinator.claim("k", "w1", 0.05);
  ASSERT_EQ(doomed.kind, CoordinatorClaim::Kind::Claimed);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // The arbiter reclaims on the next scan; w1's later renewal must lose
  // cleanly rather than stealing the item back from w2.
  const CoordinatorClaim retaken = coordinator.claim("k", "w2", 600.0);
  ASSERT_EQ(retaken.kind, CoordinatorClaim::Kind::Claimed);
  EXPECT_EQ(retaken.item.fingerprint, doomed.item.fingerprint);
  EXPECT_FALSE(coordinator.renew("k", "w1", doomed.item.fingerprint));
  EXPECT_TRUE(coordinator.renew("k", "w2", doomed.item.fingerprint));
}

TEST(SweepCoordinatorTest, CompleteValidatesStoresAndClearsTheLease) {
  SweepCoordinator coordinator(freshDir("complete"));
  coordinator.create("k", "quality", "smoke");
  const SweepManifest manifest =
      parseManifestJson(coordinator.manifestText("k"));

  const CoordinatorClaim claim = coordinator.claim("k", "w1", 600.0);
  ASSERT_EQ(claim.kind, CoordinatorClaim::Kind::Claimed);
  const std::string record = syntheticRecord(manifest, claim.item.index);

  // Garbage and foreign fingerprints are refused before anything lands.
  EXPECT_THROW((void)coordinator.complete("k", "w1", claim.item.fingerprint,
                                          "not a record"),
               std::runtime_error);
  EXPECT_THROW((void)coordinator.complete("k", "w1", "feedface", record),
               std::invalid_argument);

  EXPECT_TRUE(
      coordinator.complete("k", "w1", claim.item.fingerprint, record));
  // Duplicate completion (a tied re-run) is idempotent, not an error.
  EXPECT_FALSE(
      coordinator.complete("k", "w2", claim.item.fingerprint, record));

  CoordinatorSweepStatus status = coordinator.status("k");
  EXPECT_EQ(status.recorded, 1u);
  EXPECT_EQ(status.leased, 0u);  // completion cleared the lease

  // A recorded instance is never handed out again.
  const CoordinatorClaim next = coordinator.claim("k", "w1", 600.0);
  ASSERT_EQ(next.kind, CoordinatorClaim::Kind::Claimed);
  EXPECT_NE(next.item.fingerprint, claim.item.fingerprint);

  EXPECT_FALSE(coordinator.resultJson("k").has_value());  // not done yet
}

}  // namespace
}  // namespace ides
