// JobManager: spec parsing/validation at submit time, FIFO admission with
// a bounded queue, cooperative cancel of queued and running jobs, per-job
// run deadlines, and the determinism bridge — a job's result JSON is
// byte-identical to running the same spec directly.
#include "serve/job_manager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>

#include "serve/design_job.h"

namespace ides {
namespace {

using namespace std::chrono_literals;

/// Small, fast design job (a few milliseconds under AH).
JobSpec fastJob() {
  JobSpec spec;
  spec.design.nodes = 4;
  spec.design.existing = 30;
  spec.design.current = 12;
  spec.design.seed = 7;
  spec.design.strategy = "AH";
  return spec;
}

/// A job that runs for many seconds unless cancelled or deadlined: long
/// SA on a small instance, so the stop token is polled often.
JobSpec longJob() {
  JobSpec spec;
  spec.design.nodes = 4;
  spec.design.existing = 60;
  spec.design.current = 24;
  spec.design.strategy = "SA";
  spec.design.saIterations = 50'000'000;
  return spec;
}

bool waitFor(const std::function<bool()>& done, double seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return done();
}

bool isTerminal(std::optional<JobState> state) {
  return state.has_value() &&
         (*state == JobState::Done || *state == JobState::Failed ||
          *state == JobState::Cancelled);
}

TEST(ParseJobSpec, DesignDefaults) {
  const JobSpec spec = parseJobSpec("{\"type\": \"design\"}");
  EXPECT_EQ(spec.kind, JobSpec::Kind::Design);
  EXPECT_EQ(spec.deadlineSeconds, 0.0);
  EXPECT_EQ(spec.design.nodes, 10u);
  EXPECT_EQ(spec.design.existing, 400u);
  EXPECT_EQ(spec.design.current, 160u);
  EXPECT_EQ(spec.design.seed, 1u);
  EXPECT_EQ(spec.design.strategy, "MH");
}

TEST(ParseJobSpec, DesignFieldsRoundTrip) {
  const JobSpec spec = parseJobSpec(
      "{\"type\": \"design\", \"nodes\": 6, \"existing\": 80, "
      "\"current\": 32, \"seed\": 9, \"strategy\": \"SA\", "
      "\"sa_iters\": 500, \"deadline_seconds\": 2.5}");
  EXPECT_EQ(spec.design.nodes, 6u);
  EXPECT_EQ(spec.design.existing, 80u);
  EXPECT_EQ(spec.design.current, 32u);
  EXPECT_EQ(spec.design.seed, 9u);
  EXPECT_EQ(spec.design.strategy, "SA");
  EXPECT_EQ(spec.design.saIterations, 500);
  EXPECT_DOUBLE_EQ(spec.deadlineSeconds, 2.5);
}

TEST(ParseJobSpec, SweepDefaults) {
  const JobSpec spec =
      parseJobSpec("{\"type\": \"sweep\", \"sweep\": \"quality\"}");
  EXPECT_EQ(spec.kind, JobSpec::Kind::Sweep);
  EXPECT_EQ(spec.sweep.sweep, "quality");
  EXPECT_EQ(spec.sweep.scaleName, "smoke");
  EXPECT_EQ(spec.sweep.shards, 1);
}

TEST(ParseJobSpec, RejectsBadSpecs) {
  // Each entry is (body, substring expected in the error message).
  const std::pair<const char*, const char*> cases[] = {
      {"not json", "malformed JSON"},
      {"[1, 2]", "must be a JSON object"},
      {"{\"type\": \"mystery\"}", "unknown job type"},
      {"{\"type\": \"design\", \"frobnicate\": 1}", "unknown field"},
      {"{\"type\": \"design\", \"strategy\": \"ZZ\"}", "unknown strategy"},
      {"{\"type\": \"design\", \"nodes\": 1}", "nodes must be >= 2"},
      {"{\"type\": \"design\", \"nodes\": \"four\"}", "must be a number"},
      {"{\"type\": \"design\", \"nodes\": 2.5}", "must be an integer"},
      {"{\"type\": \"design\", \"deadline_seconds\": -1}",
       "deadline_seconds must be >= 0"},
      {"{\"type\": \"sweep\"}", "\"sweep\" must be a string"},
      {"{\"type\": \"sweep\", \"sweep\": \"nope\"}", "unknown sweep"},
      {"{\"type\": \"sweep\", \"sweep\": \"quality\", \"scale\": \"mega\"}",
       "unknown scale"},
      {"{\"type\": \"sweep\", \"sweep\": \"quality\", \"shards\": -1}",
       "shards must be >= 0"},
  };
  for (const auto& [body, expected] : cases) {
    try {
      (void)parseJobSpec(body);
      FAIL() << "accepted: " << body;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
          << body << " -> " << e.what();
    }
  }
}

TEST(JobManagerTest, RunsDesignJobToDone) {
  JobManager jobs(JobManagerOptions{});
  const auto submission = jobs.submit(fastJob());
  ASSERT_TRUE(submission.accepted);
  EXPECT_EQ(submission.id, "job-1");

  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(submission.id) == JobState::Done; }));
  EXPECT_EQ(jobs.finishedCount(), 1u);

  const auto status = jobs.statusJson(submission.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(status->find("\"runtime_seconds\":"), std::string::npos);
  EXPECT_NE(status->find("\"stopped\": false"), std::string::npos);

  // The headline guarantee: identical bytes to a direct run of the spec.
  RunContext context;
  const DesignJobResult direct = runDesignJob(fastJob().design, context);
  const auto result = jobs.resultJson(submission.id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, designResultJson(direct, /*timing=*/false));
}

TEST(JobManagerTest, UnknownIdsAnswerEmpty) {
  JobManager jobs(JobManagerOptions{});
  EXPECT_FALSE(jobs.state("job-99").has_value());
  EXPECT_FALSE(jobs.statusJson("job-99").has_value());
  EXPECT_FALSE(jobs.resultJson("job-99").has_value());
  EXPECT_FALSE(jobs.cancel("job-99"));
}

TEST(JobManagerTest, AdmissionLimitRejectsWhenQueueIsFull) {
  JobManagerOptions options;
  options.workers = 1;
  options.maxQueued = 1;
  JobManager jobs(options);

  const auto running = jobs.submit(longJob());
  ASSERT_TRUE(running.accepted);
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(running.id) == JobState::Running; }));

  const auto queued = jobs.submit(fastJob());
  ASSERT_TRUE(queued.accepted);
  EXPECT_EQ(jobs.queuedCount(), 1u);

  const auto rejected = jobs.submit(fastJob());
  EXPECT_FALSE(rejected.accepted);
  EXPECT_NE(rejected.error.find("full"), std::string::npos);

  // Unblock the worker; the queued job must still run to completion.
  EXPECT_TRUE(jobs.cancel(running.id));
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(queued.id) == JobState::Done; }));
  EXPECT_EQ(jobs.state(running.id), JobState::Cancelled);
}

TEST(JobManagerTest, CancelQueuedJobNeverRuns) {
  JobManagerOptions options;
  options.workers = 1;
  JobManager jobs(options);

  const auto running = jobs.submit(longJob());
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(running.id) == JobState::Running; }));
  const auto queued = jobs.submit(fastJob());
  ASSERT_TRUE(queued.accepted);

  EXPECT_TRUE(jobs.cancel(queued.id));
  EXPECT_EQ(jobs.state(queued.id), JobState::Cancelled);
  EXPECT_EQ(jobs.queuedCount(), 0u);
  // Never ran: no result, and a second cancel is a no-op.
  EXPECT_FALSE(jobs.resultJson(queued.id).has_value());
  EXPECT_FALSE(jobs.cancel(queued.id));

  EXPECT_TRUE(jobs.cancel(running.id));
  ASSERT_TRUE(waitFor([&] { return isTerminal(jobs.state(running.id)); }));
}

TEST(JobManagerTest, CancelRunningJobKeepsPartialResult) {
  JobManager jobs(JobManagerOptions{});
  const auto submission = jobs.submit(longJob());
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(submission.id) == JobState::Running; }));

  EXPECT_TRUE(jobs.cancel(submission.id));
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(submission.id) == JobState::Cancelled; }));

  // Cooperative cancel: the optimizer returned its best-so-far result.
  const auto result = jobs.resultJson(submission.id);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->find("\"stopped\": true"), std::string::npos);
  const auto status = jobs.statusJson(submission.id);
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("\"state\": \"cancelled\""), std::string::npos);
}

TEST(JobManagerTest, DeadlineEndsRunAsDoneWithStoppedFlag) {
  JobManager jobs(JobManagerOptions{});
  JobSpec spec = longJob();
  spec.deadlineSeconds = 0.2;
  const auto submission = jobs.submit(spec);
  ASSERT_TRUE(submission.accepted);

  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(submission.id) == JobState::Done; }));
  const auto status = jobs.statusJson(submission.id);
  ASSERT_TRUE(status.has_value());
  // A fired deadline is a normal end with a partial result, not a cancel.
  EXPECT_NE(status->find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(status->find("\"stopped\": true"), std::string::npos);
  EXPECT_TRUE(jobs.resultJson(submission.id).has_value());
  EXPECT_FALSE(jobs.cancel(submission.id));  // already terminal
}

TEST(JobManagerTest, DrainCancelsQueuedAndRejectsNewSubmits) {
  JobManagerOptions options;
  options.workers = 1;
  JobManager jobs(options);

  const auto running = jobs.submit(longJob());
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(running.id) == JobState::Running; }));
  const auto queued = jobs.submit(fastJob());

  jobs.drain();
  EXPECT_EQ(jobs.state(queued.id), JobState::Cancelled);
  EXPECT_TRUE(isTerminal(jobs.state(running.id)));

  const auto late = jobs.submit(fastJob());
  EXPECT_FALSE(late.accepted);
  EXPECT_NE(late.error.find("draining"), std::string::npos);
}

TEST(ParseJobIdNumber, AcceptsIdsRejectsEverythingElse) {
  EXPECT_EQ(parseJobIdNumber("job-1"), 1u);
  EXPECT_EQ(parseJobIdNumber("job-42"), 42u);
  EXPECT_FALSE(parseJobIdNumber("job-").has_value());
  EXPECT_FALSE(parseJobIdNumber("job-x").has_value());
  EXPECT_FALSE(parseJobIdNumber("job-1x").has_value());
  EXPECT_FALSE(parseJobIdNumber("7").has_value());
  EXPECT_FALSE(parseJobIdNumber("").has_value());
  EXPECT_FALSE(parseJobIdNumber("job-99999999999999999999").has_value());
}

TEST(JobManagerTest, ListJsonPaginatesWithLimitAndAfter) {
  JobManagerOptions options;
  options.workers = 1;
  JobManager jobs(options);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(jobs.submit(fastJob()).accepted);
  ASSERT_TRUE(waitFor([&] { return jobs.finishedCount() == 5u; }));

  const std::string page1 = jobs.listJson(2);
  EXPECT_NE(page1.find("\"id\": \"job-1\""), std::string::npos);
  EXPECT_NE(page1.find("\"id\": \"job-2\""), std::string::npos);
  EXPECT_EQ(page1.find("\"id\": \"job-3\""), std::string::npos);
  EXPECT_NE(page1.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(page1.find("\"retained\": 5"), std::string::npos);
  EXPECT_NE(page1.find("\"next_after\": \"job-2\""), std::string::npos);

  const std::string page2 = jobs.listJson(2, "job-2");
  EXPECT_EQ(page2.find("\"id\": \"job-2\""), std::string::npos);
  EXPECT_NE(page2.find("\"id\": \"job-3\""), std::string::npos);
  EXPECT_NE(page2.find("\"id\": \"job-4\""), std::string::npos);
  EXPECT_NE(page2.find("\"next_after\": \"job-4\""), std::string::npos);

  // Unlimited tail from a cursor: the last page has no next_after.
  const std::string tail = jobs.listJson(0, "job-4");
  EXPECT_NE(tail.find("\"id\": \"job-5\""), std::string::npos);
  EXPECT_EQ(tail.find("\"next_after\""), std::string::npos);

  // A cursor at (or past) the newest job yields an empty page.
  const std::string empty = jobs.listJson(2, "job-5");
  EXPECT_NE(empty.find("\"count\": 0"), std::string::npos);
  EXPECT_EQ(empty.find("\"id\":"), std::string::npos);
  EXPECT_EQ(empty.find("\"next_after\""), std::string::npos);
}

TEST(JobManagerTest, RetentionCapEvictsOldestTerminalJobs) {
  JobManagerOptions options;
  options.workers = 1;
  options.retainFinished = 2;
  JobManager jobs(options);
  for (int i = 0; i < 4; ++i) {
    const auto submission = jobs.submit(fastJob());
    ASSERT_TRUE(submission.accepted);
    ASSERT_TRUE(
        waitFor([&] { return isTerminal(jobs.state(submission.id)); }));
  }

  // The two oldest terminal jobs are gone; ids keep counting upward.
  EXPECT_FALSE(jobs.state("job-1").has_value());
  EXPECT_FALSE(jobs.state("job-2").has_value());
  EXPECT_FALSE(jobs.statusJson("job-1").has_value());
  EXPECT_FALSE(jobs.resultJson("job-1").has_value());
  EXPECT_EQ(jobs.state("job-3"), JobState::Done);
  EXPECT_EQ(jobs.state("job-4"), JobState::Done);
  EXPECT_EQ(jobs.finishedCount(), 2u);
  EXPECT_EQ(jobs.evictedCount(), 2u);

  // An evicted id remains a valid pagination cursor (numeric compare).
  const std::string page = jobs.listJson(0, "job-1");
  EXPECT_NE(page.find("\"id\": \"job-3\""), std::string::npos);
  EXPECT_NE(page.find("\"evicted\": 2"), std::string::npos);

  // The id counter never reuses an evicted number.
  const auto fifth = jobs.submit(fastJob());
  EXPECT_EQ(fifth.id, "job-5");
  ASSERT_TRUE(waitFor([&] { return isTerminal(jobs.state(fifth.id)); }));
  EXPECT_FALSE(jobs.state("job-3").has_value());  // now the oldest
  EXPECT_EQ(jobs.evictedCount(), 3u);
}

TEST(JobManagerTest, RetentionCapNeverEvictsQueuedOrRunningJobs) {
  JobManagerOptions options;
  options.workers = 1;
  options.retainFinished = 1;
  JobManager jobs(options);

  const auto running = jobs.submit(longJob());
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(running.id) == JobState::Running; }));
  const auto queued1 = jobs.submit(fastJob());
  const auto queued2 = jobs.submit(fastJob());

  // Cancelling both queued jobs makes two terminal jobs: the cap evicts
  // the older cancelled one, never the still-running job-1 above them.
  EXPECT_TRUE(jobs.cancel(queued1.id));
  EXPECT_TRUE(jobs.cancel(queued2.id));
  EXPECT_FALSE(jobs.state(queued1.id).has_value());
  EXPECT_EQ(jobs.state(queued2.id), JobState::Cancelled);
  EXPECT_EQ(jobs.state(running.id), JobState::Running);

  // Once the running job ends it becomes the oldest terminal job — and
  // the next GC pass (its own terminal transition) evicts it.
  EXPECT_TRUE(jobs.cancel(running.id));
  ASSERT_TRUE(
      waitFor([&] { return !jobs.state(running.id).has_value(); }));
  EXPECT_EQ(jobs.state(queued2.id), JobState::Cancelled);
  EXPECT_EQ(jobs.evictedCount(), 2u);
}

// ---- design-job result cache ----------------------------------------------

std::string freshCacheDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_jobcache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DesignJobFingerprint, IsStableAndIgnoresResultNeutralKnobs) {
  DesignJobSpec spec;
  const std::string fp = designJobFingerprint(spec);
  EXPECT_EQ(fp.size(), 32u);
  EXPECT_EQ(designJobFingerprint(spec), fp);

  // threads / specWorkers / specDepth change how fast a job runs, never
  // what it returns — identical fingerprint, shared cache slot.
  DesignJobSpec tuned = spec;
  tuned.threads = 8;
  tuned.specWorkers = 4;
  tuned.specDepth = 3;
  EXPECT_EQ(designJobFingerprint(tuned), fp);

  DesignJobSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(designJobFingerprint(other), fp);
  other = spec;
  other.strategy = "SA";
  EXPECT_NE(designJobFingerprint(other), fp);
  other = spec;
  other.current += 1;
  EXPECT_NE(designJobFingerprint(other), fp);
}

TEST(JobManagerTest, ResubmittedDesignJobIsServedFromTheCache) {
  JobManagerOptions options;
  options.workers = 1;
  options.storeDir = freshCacheDir("resubmit");
  JobManager jobs(options);

  const auto first = jobs.submit(fastJob());
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(first.id) == JobState::Done; }));
  const auto firstStatus = jobs.statusJson(first.id);
  ASSERT_TRUE(firstStatus.has_value());
  EXPECT_NE(firstStatus->find("\"cached\": false"), std::string::npos);

  const auto second = jobs.submit(fastJob());
  ASSERT_TRUE(second.accepted);
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(second.id) == JobState::Done; }));
  const auto secondStatus = jobs.statusJson(second.id);
  ASSERT_TRUE(secondStatus.has_value());
  EXPECT_NE(secondStatus->find("\"cached\": true"), std::string::npos);
  EXPECT_NE(secondStatus->find("\"phase\": \"cached\""), std::string::npos);

  // The headline contract: a hit returns the exact bytes of a fresh run.
  const auto firstResult = jobs.resultJson(first.id);
  const auto secondResult = jobs.resultJson(second.id);
  ASSERT_TRUE(firstResult.has_value());
  ASSERT_TRUE(secondResult.has_value());
  EXPECT_EQ(*secondResult, *firstResult);
}

TEST(JobManagerTest, CacheSurvivesAcrossManagerInstances) {
  const std::string dir = freshCacheDir("restart");
  std::string firstResult;
  {
    JobManagerOptions options;
    options.storeDir = dir;
    JobManager jobs(options);
    const auto submission = jobs.submit(fastJob());
    ASSERT_TRUE(waitFor(
        [&] { return jobs.state(submission.id) == JobState::Done; }));
    firstResult = *jobs.resultJson(submission.id);
  }
  JobManagerOptions options;
  options.storeDir = dir;
  JobManager jobs(options);
  const auto again = jobs.submit(fastJob());
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(again.id) == JobState::Done; }));
  EXPECT_NE(jobs.statusJson(again.id)->find("\"cached\": true"),
            std::string::npos);
  EXPECT_EQ(*jobs.resultJson(again.id), firstResult);
}

TEST(JobManagerTest, DifferentSpecsNeverShareACacheSlot) {
  JobManagerOptions options;
  options.storeDir = freshCacheDir("distinct");
  JobManager jobs(options);

  const auto first = jobs.submit(fastJob());
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(first.id) == JobState::Done; }));

  JobSpec other = fastJob();
  other.design.seed += 1;
  const auto second = jobs.submit(other);
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(second.id) == JobState::Done; }));
  EXPECT_NE(jobs.statusJson(second.id)->find("\"cached\": false"),
            std::string::npos);
  EXPECT_NE(*jobs.resultJson(first.id), *jobs.resultJson(second.id));
}

TEST(JobManagerTest, DeadlineStoppedRunsAreNeverCached) {
  JobManagerOptions options;
  options.storeDir = freshCacheDir("stopped");
  JobManager jobs(options);

  JobSpec spec = longJob();
  spec.deadlineSeconds = 0.2;
  const auto first = jobs.submit(spec);
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(first.id) == JobState::Done; }));
  ASSERT_NE(jobs.resultJson(first.id)->find("\"stopped\": true"),
            std::string::npos);

  // A partial result must not shadow the full one: the resubmit runs.
  const auto second = jobs.submit(spec);
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(second.id) == JobState::Done; }));
  EXPECT_NE(jobs.statusJson(second.id)->find("\"cached\": false"),
            std::string::npos);
}

TEST(JobManagerTest, CorruptCacheFilesAreIgnoredAndReplaced) {
  const std::string dir = freshCacheDir("corrupt");
  const std::string path =
      dir + "/design/" + designJobFingerprint(fastJob().design) + ".json";
  {
    JobManagerOptions options;
    options.storeDir = dir;
    JobManager jobs(options);  // creates <storeDir>/design
    std::ofstream(path) << "{\"not\": \"a result\"";
  }
  JobManagerOptions options;
  options.storeDir = dir;
  JobManager jobs(options);
  const auto submission = jobs.submit(fastJob());
  ASSERT_TRUE(waitFor(
      [&] { return jobs.state(submission.id) == JobState::Done; }));
  EXPECT_NE(jobs.statusJson(submission.id)->find("\"cached\": false"),
            std::string::npos);

  // The fresh run replaced the corrupt file; the next submit hits.
  const auto again = jobs.submit(fastJob());
  ASSERT_TRUE(
      waitFor([&] { return jobs.state(again.id) == JobState::Done; }));
  EXPECT_NE(jobs.statusJson(again.id)->find("\"cached\": true"),
            std::string::npos);
  EXPECT_EQ(*jobs.resultJson(again.id), *jobs.resultJson(submission.id));
}

TEST(JobManagerTest, ListJsonCoversEveryJobInSubmissionOrder) {
  JobManager jobs(JobManagerOptions{});
  const auto first = jobs.submit(fastJob());
  const auto second = jobs.submit(fastJob());
  ASSERT_TRUE(waitFor([&] {
    return isTerminal(jobs.state(first.id)) &&
           isTerminal(jobs.state(second.id));
  }));
  const std::string list = jobs.listJson();
  const std::size_t posFirst = list.find("\"id\": \"job-1\"");
  const std::size_t posSecond = list.find("\"id\": \"job-2\"");
  ASSERT_NE(posFirst, std::string::npos);
  ASSERT_NE(posSecond, std::string::npos);
  EXPECT_LT(posFirst, posSecond);
}

}  // namespace
}  // namespace ides
