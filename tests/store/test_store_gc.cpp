// Store GC: candidate selection (quarantine always, records only via an
// explicit epoch or age predicate), live-manifest protection (including
// the protect-everything fallback on a malformed manifest), and the
// dry-run-by-default contract. Record files are synthesized directly —
// the GC reads only the "epoch" field and the file mtime, never the full
// record schema.
#include "store/store_gc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "store/sweep_store.h"
#include "store/work_queue.h"

namespace ides {
namespace {

namespace fs = std::filesystem;

std::string freshStore(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_gc_" + name;
  fs::remove_all(dir);
  SweepStore store(dir);  // creates records/ and quarantine/
  return dir;
}

void writeFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

bool listsPath(const StoreGcReport& report, const fs::path& path) {
  return std::any_of(report.remove.begin(), report.remove.end(),
                     [&](const StoreGcAction& action) {
                       return action.path == path.string();
                     });
}

TEST(StoreGcTest, RefusesDirectoriesThatAreNotStores) {
  const std::string dir = ::testing::TempDir() + "ides_gc_notastore";
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_THROW((void)gcSweepStore(dir, {}), std::runtime_error);
}

TEST(StoreGcTest, WithoutPredicatesOnlyQuarantineIsCandidate) {
  const std::string dir = freshStore("default");
  writeFile(fs::path(dir) / "records" / "aaaa.json", "{\"epoch\": 0}");
  writeFile(fs::path(dir) / "quarantine" / "bad.json", "garbage");

  const StoreGcReport report = gcSweepStore(dir, {});
  ASSERT_EQ(report.remove.size(), 1u);
  EXPECT_EQ(report.remove[0].reason, "quarantined");
  EXPECT_EQ(report.kept, 1u);
  EXPECT_FALSE(report.applied);
  // Dry run is the default: nothing was deleted.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "bad.json"));

  StoreGcOptions apply;
  apply.apply = true;
  const StoreGcReport applied = gcSweepStore(dir, apply);
  EXPECT_TRUE(applied.applied);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "quarantine" / "bad.json"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "records" / "aaaa.json"));
}

TEST(StoreGcTest, EpochPredicateReapsOnlyParseableOldRecords) {
  const std::string dir = freshStore("epoch");
  const fs::path records = fs::path(dir) / "records";
  writeFile(records / "old.json", "{\"epoch\": 0}");
  writeFile(records / "fresh.json", "{\"epoch\": 1}");
  writeFile(records / "prefield.json", "{}");  // predates the field -> 0
  writeFile(records / "corrupt.json", "not json at all");
  writeFile(records / "inflight.json.tmp.1234", "{}");  // never touched

  StoreGcOptions options;
  options.epoch = 1;
  const StoreGcReport report = gcSweepStore(dir, options);
  ASSERT_EQ(report.remove.size(), 2u);
  EXPECT_TRUE(listsPath(report, records / "old.json"));
  EXPECT_TRUE(listsPath(report, records / "prefield.json"));
  EXPECT_EQ(report.remove[0].reason, "superseded (epoch 0 < 1)");
  // The unparseable record is load()'s quarantine business, not the GC's;
  // the current-epoch record and the tmp file are untouched.
  EXPECT_EQ(report.kept, 2u);
}

TEST(StoreGcTest, OlderThanPredicateUsesFileAge) {
  const std::string dir = freshStore("age");
  const fs::path records = fs::path(dir) / "records";
  writeFile(records / "ancient.json", "{}");
  writeFile(records / "recent.json", "{}");
  fs::last_write_time(records / "ancient.json",
                      fs::file_time_type::clock::now() -
                          std::chrono::seconds(180));

  StoreGcOptions options;
  options.olderThanSeconds = 60.0;
  const StoreGcReport report = gcSweepStore(dir, options);
  ASSERT_EQ(report.remove.size(), 1u);
  EXPECT_EQ(report.remove[0].path, (records / "ancient.json").string());
  EXPECT_EQ(report.remove[0].reason, "older than 60s");
  EXPECT_EQ(report.kept, 1u);
}

TEST(StoreGcTest, LiveManifestProtectsItsFingerprints) {
  const std::string dir = freshStore("manifest");
  const fs::path records = fs::path(dir) / "records";
  SweepScale tiny;
  tiny.name = "tiny";
  tiny.seeds = 1;
  tiny.saIterations = 60;
  tiny.sizes = {40};
  tiny.futureAppsPerInstance = 2;
  const InstanceSuite suite = namedSweep("increments", tiny);
  const SweepManifest manifest = makeManifest("increments", tiny, suite);
  writeManifest(dir, manifest);

  const std::string liveFp = manifest.items[0].fingerprint;
  writeFile(records / (liveFp + ".json"), "{\"epoch\": 0}");
  writeFile(records / "orphan.json", "{\"epoch\": 0}");

  StoreGcOptions options;
  options.epoch = 1;
  options.apply = true;
  const StoreGcReport report = gcSweepStore(dir, options);
  ASSERT_EQ(report.remove.size(), 1u);
  EXPECT_EQ(report.remove[0].fingerprint, "orphan");
  EXPECT_EQ(report.protectedByManifest, 1u);
  // Even under --apply, a record the in-flight sweep still references
  // survives; the orphan is gone.
  EXPECT_TRUE(fs::exists(records / (liveFp + ".json")));
  EXPECT_FALSE(fs::exists(records / "orphan.json"));
}

TEST(StoreGcTest, MalformedManifestProtectsEverything) {
  const std::string dir = freshStore("poisoned");
  writeFile(fs::path(dir) / "manifest.json", "{ not a manifest");
  writeFile(fs::path(dir) / "records" / "old.json", "{\"epoch\": 0}");

  StoreGcOptions options;
  options.epoch = 1;
  const StoreGcReport report = gcSweepStore(dir, options);
  EXPECT_TRUE(report.remove.empty());
  EXPECT_EQ(report.protectedByManifest, 1u);
  EXPECT_EQ(report.kept, 1u);
}

TEST(StoreGcTest, TextReportsDryRunAndAppliedPhrasing) {
  const std::string dir = freshStore("text");
  writeFile(fs::path(dir) / "quarantine" / "bad.json", "junk");

  const StoreGcReport dry = gcSweepStore(dir, {});
  const std::string dryText = storeGcText(dry, {});
  EXPECT_NE(dryText.find("would remove "), std::string::npos);
  EXPECT_NE(dryText.find("1 removable, 0 kept"), std::string::npos);
  EXPECT_NE(dryText.find("re-run with --apply"), std::string::npos);

  StoreGcOptions options;
  options.apply = true;
  const StoreGcReport applied = gcSweepStore(dir, options);
  const std::string appliedText = storeGcText(applied, options);
  EXPECT_NE(appliedText.find("removed "), std::string::npos);
  EXPECT_EQ(appliedText.find("would remove"), std::string::npos);
  EXPECT_EQ(appliedText.find("re-run with --apply"), std::string::npos);
}

}  // namespace
}  // namespace ides
