// Store audit (`ides_cli store ls/verify`): reports every record with its
// identity, flags corrupt ones with a reason, lists the quarantine — and,
// unlike SweepStore::load, never mutates the store it inspects.
#include "store/store_audit.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "store/sweep_store.h"

namespace ides {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_audit_" + name;
  fs::remove_all(dir);
  return dir;
}

InstanceOutcome outcomeFor(const char* strategy) {
  InstanceOutcome outcome;
  outcome.report.strategy = strategy;
  outcome.report.feasible = true;
  outcome.report.objective = 12.5;
  outcome.report.metrics.c1p = 0.25;
  outcome.report.metrics.c2p = 400;
  outcome.report.evaluations = 100;
  outcome.report.seconds = 0.5;
  return outcome;
}

TEST(StoreAuditTest, ThrowsOnDirectoryThatIsNotAStore) {
  const std::string dir = freshDir("notastore");
  fs::create_directories(dir);  // exists, but has no records/
  EXPECT_THROW(auditSweepStore(dir), std::runtime_error);
}

TEST(StoreAuditTest, ReportsHealthyRecordsSortedByFingerprint) {
  const std::string dir = freshDir("healthy");
  SweepStore store(dir);
  ASSERT_TRUE(store.store("bbb", "fig-quality", "n40/s0/MH",
                          outcomeFor("MH")));
  ASSERT_TRUE(store.store("aaa", "fig-quality", "n40/s0/AH",
                          outcomeFor("AH")));

  const StoreAuditReport report = auditSweepStore(dir);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.okCount, 2u);
  EXPECT_EQ(report.badCount, 0u);
  EXPECT_TRUE(report.quarantined.empty());

  EXPECT_EQ(report.records[0].fingerprint, "aaa");
  EXPECT_EQ(report.records[0].suite, "fig-quality");
  EXPECT_EQ(report.records[0].id, "n40/s0/AH");
  EXPECT_EQ(report.records[0].strategy, "AH");
  EXPECT_TRUE(report.records[0].ok);
  EXPECT_EQ(report.records[1].fingerprint, "bbb");
  EXPECT_EQ(report.records[1].strategy, "MH");

  const std::string ls = storeLsText(report);
  EXPECT_NE(ls.find("aaa"), std::string::npos);
  EXPECT_NE(ls.find("n40/s0/MH"), std::string::npos);
  EXPECT_NE(ls.find("2 record(s), 0 quarantined"), std::string::npos);
  EXPECT_EQ(ls.find("[BAD]"), std::string::npos);

  const std::string verify = storeVerifyText(report);
  EXPECT_NE(verify.find("verify: 2 ok, 0 bad, 0 quarantined"),
            std::string::npos);
}

TEST(StoreAuditTest, FlagsCorruptRecordsWithoutQuarantiningThem) {
  const std::string dir = freshDir("corrupt");
  SweepStore store(dir);
  ASSERT_TRUE(store.store("good", "fig-quality", "n40/s0/AH",
                          outcomeFor("AH")));
  ASSERT_TRUE(store.store("mangle", "fig-quality", "n40/s0/MH",
                          outcomeFor("MH")));
  {
    // Truncate one record mid-document: parseable identity gone, invalid
    // JSON — exactly what a crashed writer without the tmp+rename protocol
    // would leave behind.
    std::ofstream out(store.recordPath("mangle"),
                      std::ios::binary | std::ios::trunc);
    out << "{\"schema\": 1, \"suite\": \"fig-qua";
  }

  const StoreAuditReport report = auditSweepStore(dir);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.okCount, 1u);
  EXPECT_EQ(report.badCount, 1u);

  const StoreRecordInfo& bad = report.records[1];
  EXPECT_EQ(bad.fingerprint, "mangle");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  // The audit is read-only: the corrupt record is still in records/, not
  // quarantined, and a later audit sees the same picture.
  EXPECT_TRUE(fs::exists(store.recordPath("mangle")));
  EXPECT_TRUE(report.quarantined.empty());

  EXPECT_NE(storeLsText(report).find("[BAD]"), std::string::npos);
  const std::string verify = storeVerifyText(report);
  EXPECT_NE(verify.find("BAD mangle:"), std::string::npos);
  EXPECT_NE(verify.find("verify: 1 ok, 1 bad, 0 quarantined"),
            std::string::npos);
}

TEST(StoreAuditTest, FlagsFingerprintMismatchByFileName) {
  const std::string dir = freshDir("mismatch");
  SweepStore store(dir);
  ASSERT_TRUE(store.store("original", "fig-quality", "n40/s0/AH",
                          outcomeFor("AH")));
  // A record copied to the wrong address must fail verification even
  // though its contents are a perfectly valid document.
  fs::copy_file(store.recordPath("original"), store.recordPath("imposter"));

  const StoreAuditReport report = auditSweepStore(dir);
  ASSERT_EQ(report.records.size(), 2u);
  const StoreRecordInfo& imposter = report.records[0];
  ASSERT_EQ(imposter.fingerprint, "imposter");
  EXPECT_FALSE(imposter.ok);
  EXPECT_NE(imposter.error.find("fingerprint"), std::string::npos);
  // Identity is still surfaced best-effort so the operator can find the
  // real record.
  EXPECT_EQ(imposter.suite, "fig-quality");
  EXPECT_EQ(imposter.id, "n40/s0/AH");
}

TEST(StoreAuditTest, ListsQuarantinedFiles) {
  const std::string dir = freshDir("quarantine");
  SweepStore store(dir);
  ASSERT_TRUE(store.store("broken", "fig-quality", "n40/s0/AH",
                          outcomeFor("AH")));
  {
    std::ofstream out(store.recordPath("broken"),
                      std::ios::binary | std::ios::trunc);
    out << "not json";
  }
  // load() applies the quarantine protocol; the audit then reports what it
  // moved aside.
  EXPECT_FALSE(store.load("broken").has_value());
  EXPECT_EQ(store.quarantinedCount(), 1u);

  const StoreAuditReport report = auditSweepStore(dir);
  EXPECT_TRUE(report.records.empty());
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_NE(report.quarantined[0].find("broken"), std::string::npos);
  EXPECT_NE(storeVerifyText(report).find("quarantined: "),
            std::string::npos);
  EXPECT_NE(storeLsText(report).find("0 record(s), 1 quarantined"),
            std::string::npos);
}

TEST(StoreAuditTest, IgnoresTmpFiles) {
  const std::string dir = freshDir("tmpfiles");
  SweepStore store(dir);
  ASSERT_TRUE(store.store("real", "fig-quality", "n40/s0/AH",
                          outcomeFor("AH")));
  {
    // An in-flight write from a live worker must not show up in the audit.
    std::ofstream out(fs::path(dir) / "records" / "real.json.tmp.1234");
    out << "{";
  }
  const StoreAuditReport report = auditSweepStore(dir);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].fingerprint, "real");
  EXPECT_EQ(report.badCount, 0u);
}

}  // namespace
}  // namespace ides
