// SweepStore: record round-trip, fingerprint stability/sensitivity,
// quarantine, refusal of partial results, and the headline guarantee —
// a cancelled sweep resumed from the store renders byte-identical
// (timing off) to an uncancelled run, including a deadline that fires
// exactly at a shard boundary.
#include "store/sweep_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/batch_suites.h"
#include "test_helpers.h"
#include "util/json_reader.h"

namespace ides {
namespace {

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Same shape as the batch-runner unit suite: 2 sizes x 2 seeds x
/// {AH, MH, SA-short} on the loaded 4-node config.
InstanceSuite smallSuite(int saIterations = 150) {
  InstanceSuite suite("unit-store");
  const std::size_t sizes[] = {12, 20};
  for (const std::size_t size : sizes) {
    for (int s = 0; s < 2; ++s) {
      for (const char* strategy : {"AH", "MH", "SA"}) {
        BatchInstance instance;
        instance.group = "n";  // += avoids GCC -Wrestrict (PR105651)
        instance.group += std::to_string(size);
        instance.id = instance.group;
        instance.id += "/s";
        instance.id += std::to_string(s);
        instance.id += "/";
        instance.id += strategy;
        instance.axis = static_cast<double>(size);
        instance.seedIndex = s;
        instance.suiteSeed = 100 + static_cast<std::uint64_t>(s);
        instance.config = ides::testing::smallSuiteConfig(40, size);
        instance.strategy = strategy;
        instance.options.sa.iterations = saIterations;
        instance.options.sa.seed = static_cast<std::uint64_t>(s) + 1;
        suite.add(std::move(instance));
      }
    }
  }
  return suite;
}

InstanceOutcome probeOutcome() {
  InstanceOutcome outcome;
  outcome.report.strategy = "SA";
  outcome.report.feasible = true;
  outcome.report.objective = 123.45600000000013;  // needs all 17 digits
  outcome.report.metrics.c1p = 1.0 / 3.0;
  outcome.report.metrics.c1m = 0.25;
  outcome.report.metrics.c2p = 98765;
  outcome.report.metrics.c2mBytes = 4321;
  outcome.report.evaluations = 1500;
  outcome.report.seconds = 0.123456;
  outcome.extras.add("future_fit", 4.0);
  outcome.extras.add("future_samples", 5.0);
  return outcome;
}

TEST(SweepStoreTest, RecordRoundTripPreservesEveryAggregatedField) {
  SweepStore store(freshDir("roundtrip"));
  const InstanceOutcome original = probeOutcome();
  ASSERT_TRUE(store.store("fp1", "unit-store", "n12/s0/SA", original));
  EXPECT_TRUE(store.contains("fp1"));
  EXPECT_EQ(store.recordCount(), 1u);

  const auto loaded = store.load("fp1");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->hasReport);
  EXPECT_EQ(loaded->report.strategy, original.report.strategy);
  EXPECT_EQ(loaded->report.feasible, original.report.feasible);
  EXPECT_EQ(loaded->report.objective, original.report.objective);
  EXPECT_EQ(loaded->report.metrics.c1p, original.report.metrics.c1p);
  EXPECT_EQ(loaded->report.metrics.c1m, original.report.metrics.c1m);
  EXPECT_EQ(loaded->report.metrics.c2p, original.report.metrics.c2p);
  EXPECT_EQ(loaded->report.metrics.c2mBytes,
            original.report.metrics.c2mBytes);
  EXPECT_EQ(loaded->report.evaluations, original.report.evaluations);
  EXPECT_EQ(loaded->report.seconds, original.report.seconds);
  EXPECT_FALSE(loaded->report.stopped);
  ASSERT_EQ(loaded->extras.fields.size(), 2u);
  EXPECT_EQ(loaded->extras.fields[0].first, "future_fit");
  EXPECT_EQ(loaded->extras.fields[0].second, 4.0);
  EXPECT_EQ(loaded->extras.fields[1].first, "future_samples");
}

TEST(SweepStoreTest, ExtrasOnlyRecordRoundTrips) {
  SweepStore store(freshDir("extras"));
  InstanceOutcome original;
  original.hasReport = false;
  original.extras.add("accepted", 7.0);
  original.extras.add("queue", 24.0);
  ASSERT_TRUE(store.store("fp2", "unit-store", "inc/s0/AH", original));
  const auto loaded = store.load("fp2");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->hasReport);
  ASSERT_EQ(loaded->extras.fields.size(), 2u);
  EXPECT_EQ(loaded->extras.fields[1].second, 24.0);
}

TEST(SweepStoreTest, FirstWriterWins) {
  SweepStore store(freshDir("firstwriter"));
  InstanceOutcome outcome = probeOutcome();
  ASSERT_TRUE(store.store("fp", "s", "id", outcome));
  outcome.report.objective = 999.0;
  EXPECT_FALSE(store.store("fp", "s", "id", outcome));
  EXPECT_EQ(store.load("fp")->report.objective,
            probeOutcome().report.objective);
}

TEST(SweepStoreTest, RefusesPartialOutcomes) {
  SweepStore store(freshDir("partial"));
  InstanceOutcome stopped = probeOutcome();
  stopped.report.stopped = true;
  EXPECT_FALSE(store.store("fp", "s", "id", stopped));
  EXPECT_FALSE(store.contains("fp"));

  InstanceOutcome customStopped;
  customStopped.hasReport = false;
  customStopped.extras.add("accepted", 3.0);
  customStopped.extras.add("run_stopped", 1.0);
  EXPECT_FALSE(store.store("fp", "s", "id", customStopped));

  customStopped.extras.fields[1].second = 0.0;  // full run after all
  EXPECT_TRUE(store.store("fp", "s", "id", customStopped));
}

TEST(SweepStoreTest, RefusesNonFiniteOutcomes) {
  // "inf"/"nan" would render into a record the strict reader can never
  // parse — a permanently re-quarantined, re-run instance. Refused instead.
  SweepStore store(freshDir("nonfinite"));
  InstanceOutcome infinite = probeOutcome();
  infinite.report.objective = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(store.store("fp", "s", "id", infinite));

  InstanceOutcome nanExtra = probeOutcome();
  nanExtra.extras.add("ratio", std::nan(""));
  EXPECT_FALSE(store.store("fp", "s", "id", nanExtra));
  EXPECT_EQ(store.recordCount(), 0u);
}

TEST(SweepStoreTest, CorruptRecordIsQuarantinedAndReportedAbsent) {
  SweepStore store(freshDir("corrupt"));
  ASSERT_TRUE(store.store("fp", "s", "id", probeOutcome()));

  // Truncate the record to simulate a torn write / bit rot.
  {
    std::ofstream out(store.recordPath("fp"), std::ios::trunc);
    out << "{\"schema\": 1, \"finger";
  }
  EXPECT_FALSE(store.load("fp").has_value());
  EXPECT_EQ(store.quarantinedCount(), 1u);
  // The corrupt file was moved aside: the instance reads as absent and can
  // be re-run and re-stored.
  EXPECT_FALSE(store.contains("fp"));
  EXPECT_TRUE(store.store("fp", "s", "id", probeOutcome()));
  EXPECT_TRUE(store.load("fp").has_value());
}

TEST(SweepStoreTest, MismatchedFingerprintInsideRecordIsQuarantined) {
  SweepStore store(freshDir("mismatch"));
  ASSERT_TRUE(store.store("fp-a", "s", "id", probeOutcome()));
  // A record copied under the wrong name must not be trusted.
  std::filesystem::copy_file(store.recordPath("fp-a"),
                             store.recordPath("fp-b"));
  EXPECT_FALSE(store.load("fp-b").has_value());
  EXPECT_EQ(store.quarantinedCount(), 1u);
  EXPECT_TRUE(store.load("fp-a").has_value());
}

// ---- instance fingerprints ------------------------------------------------

TEST(InstanceFingerprintTest, StableAcrossCallsAndSensitiveToInputs) {
  const InstanceSuite suite = smallSuite();
  const BatchInstance& base = suite.instances()[0];
  const std::string fp = instanceFingerprint("unit-store", base);
  EXPECT_EQ(fp.size(), 32u);
  EXPECT_EQ(fp, instanceFingerprint("unit-store", base));

  // Result-relevant changes move the fingerprint…
  BatchInstance changed = base;
  changed.suiteSeed += 1;
  EXPECT_NE(instanceFingerprint("unit-store", changed), fp);
  changed = base;
  changed.strategy = "MH";
  EXPECT_NE(instanceFingerprint("unit-store", changed), fp);
  changed = base;
  changed.options.sa.iterations += 1;
  EXPECT_NE(instanceFingerprint("unit-store", changed), fp);
  changed = base;
  changed.options.weights.w2p = 9.0;
  EXPECT_NE(instanceFingerprint("unit-store", changed), fp);
  changed = base;
  changed.config.currentProcesses += 1;
  EXPECT_NE(instanceFingerprint("unit-store", changed), fp);
  EXPECT_NE(instanceFingerprint("other-suite", base), fp);

  // …result-neutral knobs do not (their bit-identity is asserted by the
  // optimizer/speculation suites, so records are shareable across them).
  BatchInstance neutral = base;
  neutral.options.sa.speculation.workers = 4;
  neutral.options.sa.speculation.maxDepth = 16;
  neutral.options.sa.incrementalEval = false;
  neutral.options.sa.recordCostTrace = true;
  neutral.options.psa.threads = 8;
  neutral.options.psa.speculativeWorkers = 2;
  EXPECT_EQ(instanceFingerprint("unit-store", neutral), fp);
}

TEST(InstanceFingerprintTest, NamedSweepFingerprintsAreUnique) {
  SweepScale tiny;
  tiny.seeds = 2;
  tiny.sizes = {40, 160};
  tiny.futureAppsPerInstance = 2;
  std::vector<std::string> seen;
  for (const std::string& name : sweepNames()) {
    const InstanceSuite suite = namedSweep(name, tiny);
    for (const BatchInstance& instance : suite.instances()) {
      const std::string fp = instanceFingerprint(suite.name(), instance);
      for (const std::string& other : seen) {
        ASSERT_NE(fp, other) << name << " " << instance.id;
      }
      seen.push_back(fp);
    }
  }
}

// ---- resume ---------------------------------------------------------------

std::string deterministicJson(const BatchReport& report) {
  BatchJsonOptions json;
  json.timing = false;
  return batchReportJson("unit", report, json);
}

TEST(SweepStoreResumeTest, CancelledSweepResumesByteIdentical) {
  const InstanceSuite suite = smallSuite();
  const std::string uncancelled = deterministicJson(runBatch(suite, {}));

  SweepStore store(freshDir("resume"));
  {
    StopToken stop;
    SweepStoreCache cache(store, suite.name(), /*reuse=*/false);
    BatchOptions options;
    options.shards = 1;  // deterministic completion prefix
    options.stop = &stop;
    options.cache = &cache;
    std::size_t seen = 0;
    options.onInstanceDone = [&](const InstanceResult&) {
      if (++seen == 3) stop.requestStop();
    };
    const BatchReport partial = runBatch(suite, options);
    EXPECT_TRUE(partial.stopped);
    EXPECT_EQ(partial.completed, 3u);
    EXPECT_EQ(cache.stored(), 3u);
    EXPECT_EQ(store.recordCount(), 3u);
  }

  // Resume: the three stored instances come back as cache hits, the rest
  // run fresh; the deterministic rendering matches the uncancelled run.
  SweepStoreCache cache(store, suite.name(), /*reuse=*/true);
  BatchOptions options;
  options.shards = 2;  // resume may shard differently — still identical
  options.cache = &cache;
  const BatchReport resumed = runBatch(suite, options);
  EXPECT_EQ(resumed.completed, suite.size());
  EXPECT_EQ(resumed.cacheHits, 3u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(deterministicJson(resumed), uncancelled);
  EXPECT_EQ(store.recordCount(), suite.size());
}

TEST(SweepStoreResumeTest, ReuseOffRecordsButNeverReads) {
  const InstanceSuite suite = smallSuite();
  SweepStore store(freshDir("writeonly"));
  SweepStoreCache writeOnly(store, suite.name(), /*reuse=*/false);
  BatchOptions options;
  options.cache = &writeOnly;
  (void)runBatch(suite, options);
  EXPECT_EQ(store.recordCount(), suite.size());

  SweepStoreCache again(store, suite.name(), /*reuse=*/false);
  options.cache = &again;
  const BatchReport rerun = runBatch(suite, options);
  EXPECT_EQ(rerun.cacheHits, 0u);
  EXPECT_EQ(again.hits(), 0u);
}

// Satellite: a StopToken DEADLINE firing exactly at a shard boundary (the
// runner polls the token between instance claims) must leave a well-formed,
// store-resumable partial report.
TEST(SweepStoreResumeTest, DeadlineAtShardBoundaryLeavesResumableState) {
  const InstanceSuite suite = smallSuite();
  const std::string uncancelled = deterministicJson(runBatch(suite, {}));

  SweepStore store(freshDir("deadline"));
  StopToken stop;
  SweepStoreCache cache(store, suite.name(), /*reuse=*/false);
  BatchOptions options;
  options.shards = 1;
  options.stop = &stop;
  options.cache = &cache;
  std::size_t seen = 0;
  options.onInstanceDone = [&](const InstanceResult&) {
    // An already-expired deadline latches on the runner's next poll, which
    // is exactly the next shard-boundary claim.
    if (++seen == 4) stop.setTimeout(0.0);
  };
  const BatchReport partial = runBatch(suite, options);
  EXPECT_TRUE(partial.stopped);
  EXPECT_EQ(partial.completed, 4u);

  // Well-formed: our own strict JSON parser accepts the partial rendering,
  // and its header counts match what actually ran.
  const std::string partialJson = deterministicJson(partial);
  const JsonValue parsed = parseJson(partialJson);
  EXPECT_EQ(parsed.intAt("completed"), 4);
  EXPECT_TRUE(parsed.boolAt("stopped"));
  EXPECT_EQ(parsed.at("results").items.size(), 4u);
  // No partial record leaked into the store: exactly the completed
  // instances persisted.
  EXPECT_EQ(store.recordCount(), 4u);

  // Resumable: a reuse run completes the suite byte-identically.
  SweepStoreCache resumeCache(store, suite.name(), /*reuse=*/true);
  BatchOptions resumeOptions;
  resumeOptions.cache = &resumeCache;
  const BatchReport resumed = runBatch(suite, resumeOptions);
  EXPECT_EQ(resumed.cacheHits, 4u);
  EXPECT_EQ(deterministicJson(resumed), uncancelled);
}

}  // namespace
}  // namespace ides
