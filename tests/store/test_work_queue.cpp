// Work queue: manifest round-trip and verification, exclusive claims,
// stale-lease reclaim, stop sentinel, and the cross-process guarantee —
// N independent participants over one shared directory produce a merged
// report byte-identical (timing off) to the single-process runBatch path.
// Participants are simulated with threads, each holding its own
// SweepStore/WorkQueue objects; the protocol is entirely file-based, so
// thread- vs process-separation is irrelevant to what is being tested.
#include "store/work_queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "test_helpers.h"

namespace ides {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_queue_" + name;
  fs::remove_all(dir);
  return dir;
}

/// 2 sizes x 1 seed x {AH, MH} on the loaded 4-node config — small enough
/// for a unit test, real enough that claims interleave.
InstanceSuite smallSuite() {
  InstanceSuite suite("unit-queue");
  const std::size_t sizes[] = {12, 20};
  for (const std::size_t size : sizes) {
    for (const char* strategy : {"AH", "MH"}) {
      BatchInstance instance;
      instance.group = "n";  // += avoids GCC -Wrestrict (PR105651)
      instance.group += std::to_string(size);
      instance.id = instance.group;
      instance.id += "/s0/";
      instance.id += strategy;
      instance.axis = static_cast<double>(size);
      instance.suiteSeed = 100;
      instance.config = ides::testing::smallSuiteConfig(40, size);
      instance.strategy = strategy;
      suite.add(std::move(instance));
    }
  }
  return suite;
}

SweepScale tinyScale() {
  SweepScale tiny;
  tiny.name = "tiny";
  tiny.seeds = 1;
  tiny.saIterations = 60;
  tiny.sizes = {40};
  tiny.futureAppsPerInstance = 2;
  return tiny;
}

TEST(WorkQueueTest, ManifestRoundTripsThroughDisk) {
  const std::string dir = freshDir("manifest");
  fs::create_directories(dir);
  EXPECT_FALSE(readManifest(dir).has_value());

  const SweepScale scale = tinyScale();
  const InstanceSuite suite = namedSweep("increments", scale);
  const SweepManifest manifest = makeManifest("increments", scale, suite);
  writeManifest(dir, manifest);

  const auto loaded = readManifest(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sweep, "increments");
  EXPECT_EQ(loaded->suiteName, "ext-increments");
  EXPECT_EQ(loaded->scale.name, scale.name);
  EXPECT_EQ(loaded->scale.seeds, scale.seeds);
  EXPECT_EQ(loaded->scale.saIterations, scale.saIterations);
  EXPECT_EQ(loaded->scale.sizes, scale.sizes);
  EXPECT_EQ(loaded->scale.futureAppsPerInstance,
            scale.futureAppsPerInstance);
  ASSERT_EQ(loaded->items.size(), manifest.items.size());
  for (std::size_t i = 0; i < manifest.items.size(); ++i) {
    EXPECT_EQ(loaded->items[i].index, manifest.items[i].index);
    EXPECT_EQ(loaded->items[i].id, manifest.items[i].id);
    EXPECT_EQ(loaded->items[i].fingerprint, manifest.items[i].fingerprint);
  }
}

TEST(WorkQueueTest, SuiteFromManifestVerifiesFingerprints) {
  const std::string dir = freshDir("verify");
  fs::create_directories(dir);
  const SweepScale scale = tinyScale();
  const InstanceSuite suite = namedSweep("increments", scale);
  SweepManifest manifest = makeManifest("increments", scale, suite);

  // Round-tripping through disk reproduces the identical suite.
  writeManifest(dir, manifest);
  const InstanceSuite rebuilt = suiteFromManifest(*readManifest(dir));
  EXPECT_EQ(rebuilt.name(), suite.name());
  EXPECT_EQ(rebuilt.size(), suite.size());

  // A tampered fingerprint (version-skewed peer) is refused loudly.
  manifest.items[0].fingerprint[0] =
      manifest.items[0].fingerprint[0] == 'a' ? 'b' : 'a';
  EXPECT_THROW((void)suiteFromManifest(manifest), std::runtime_error);
}

TEST(WorkQueueTest, ClaimsAreExclusiveAndOrdered) {
  const std::string dir = freshDir("claims");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue alice(dir, "alice");
  WorkQueue bob(dir, "bob");

  const auto a = alice.claim(store, manifest);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->index, 0u);
  const auto b = bob.claim(store, manifest);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->index, 1u);  // alice's live lease is respected

  // A released claim becomes claimable again.
  alice.release(*a);
  const auto b2 = bob.claim(store, manifest);
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(b2->index, 0u);

  // A completed (recorded) item is never claimed again.
  InstanceOutcome outcome;
  outcome.hasReport = false;
  outcome.extras.add("echo", 1.0);
  store.store(b->fingerprint, suite.name(), b->id, outcome);
  bob.complete(*b);
  const auto next = alice.claim(store, manifest);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->index, 2u);
}

TEST(WorkQueueTest, StaleLeaseIsReclaimedLiveLeaseIsNot) {
  const std::string dir = freshDir("stale");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue dead(dir, "dead", /*leaseSeconds=*/5.0);
  WorkQueue live(dir, "live", /*leaseSeconds=*/600.0);

  const auto claimed = dead.claim(store, manifest);
  ASSERT_TRUE(claimed.has_value());

  // While the lease is fresh, every claim goes elsewhere.
  const auto other = live.claim(store, manifest);
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(other->index, claimed->index);

  // Backdate the dead worker's lease beyond its declared duration: the
  // next claimer reclaims it.
  const std::string lease =
      (fs::path(dir) / "claims" / (claimed->fingerprint + ".lease"))
          .string();
  fs::last_write_time(lease, fs::file_time_type::clock::now() -
                                 std::chrono::seconds(60));
  const auto reclaimed = live.claim(store, manifest);
  ASSERT_TRUE(reclaimed.has_value());
  EXPECT_EQ(reclaimed->index, claimed->index);
}

TEST(WorkQueueTest, RenewRefreshesOwnLeaseAgainstReclaim) {
  const std::string dir = freshDir("renew");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue slow(dir, "slow", /*leaseSeconds=*/5.0);
  WorkQueue peer(dir, "peer", /*leaseSeconds=*/600.0);

  const auto claimed = slow.claim(store, manifest);
  ASSERT_TRUE(claimed.has_value());

  // Backdate the lease past its declared duration — reclaimable — then
  // renew: the rewrite restamps the mtime, so the next claimer must go
  // elsewhere instead of reclaiming.
  const std::string lease =
      (fs::path(dir) / "claims" / (claimed->fingerprint + ".lease"))
          .string();
  fs::last_write_time(lease, fs::file_time_type::clock::now() -
                                 std::chrono::seconds(60));
  EXPECT_TRUE(slow.renew(*claimed));
  const auto other = peer.claim(store, manifest);
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(other->index, claimed->index);
}

TEST(WorkQueueTest, RenewLosesCleanlyAfterReclaim) {
  const std::string dir = freshDir("renew_lost");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue dead(dir, "dead", /*leaseSeconds=*/5.0);
  WorkQueue live(dir, "live", /*leaseSeconds=*/600.0);

  // Renewing an item we never claimed is a clean loss, not an error.
  EXPECT_FALSE(dead.renew({0, manifest.items[0].id,
                           manifest.items[0].fingerprint}));

  const auto claimed = dead.claim(store, manifest);
  ASSERT_TRUE(claimed.has_value());
  const std::string lease =
      (fs::path(dir) / "claims" / (claimed->fingerprint + ".lease"))
          .string();
  fs::last_write_time(lease, fs::file_time_type::clock::now() -
                                 std::chrono::seconds(60));
  const auto reclaimed = live.claim(store, manifest);
  ASSERT_TRUE(reclaimed.has_value());
  ASSERT_EQ(reclaimed->index, claimed->index);

  // The original owner wakes up: its renewal must lose — and must not
  // clobber or resurrect the reclaimer's lease on the way out.
  EXPECT_FALSE(dead.renew(*claimed));
  std::ifstream in(lease);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"live\""), std::string::npos);
  EXPECT_TRUE(live.renew(*reclaimed));
}

TEST(WorkQueueTest, LeaseGuardReleasesLeaseWhenJobThrows) {
  const std::string dir = freshDir("throwing");
  InstanceSuite suite("unit-queue");
  BatchInstance instance;
  instance.id = "boom/s0/none";
  instance.group = "boom";
  instance.job = [](const BatchInstance&,
                    const StopToken*) -> InstanceOutcome {
    throw std::runtime_error("instance exploded");
  };
  suite.add(std::move(instance));
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue queue(dir, "w");

  EXPECT_THROW(runQueuedInstances(suite, manifest, store, queue, nullptr),
               std::runtime_error);

  // The regression this guards: before LeaseGuard, the throw leaked the
  // claim and peers had to wait out the stale-lease timeout. Now the lease
  // is released on the unwind path and the instance is immediately
  // claimable again.
  EXPECT_FALSE(
      fs::exists(fs::path(dir) / "claims" /
                 (manifest.items[0].fingerprint + ".lease")));
  const auto again = queue.claim(store, manifest);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->index, 0u);
}

TEST(WorkQueueTest, LeaseGuardHeartbeatOutlivesDeclaredLease) {
  const std::string dir = freshDir("heartbeat");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue slow(dir, "slow", /*leaseSeconds=*/2.0);
  WorkQueue peer(dir, "peer", /*leaseSeconds=*/600.0);
  FileSweepParticipant participant(suite, manifest, store, slow);

  const auto claimed = participant.claimNext();
  ASSERT_TRUE(claimed.has_value());
  {
    // Hold the claim well past its 2s declared lease. The guard's renewal
    // thread (period leaseSeconds/3) keeps the mtime fresh, so the peer
    // never reclaims from a merely-slow owner.
    LeaseGuard guard(participant, *claimed);
    std::this_thread::sleep_for(std::chrono::milliseconds(3200));
    const auto other = peer.claim(store, manifest);
    ASSERT_TRUE(other.has_value());
    EXPECT_NE(other->index, claimed->index);
    EXPECT_FALSE(guard.renewalLost());
    peer.release(*other);
  }
  // Guard destroyed without markCompleted: the lease is released and the
  // instance goes back to the pool.
  const auto after = peer.claim(store, manifest);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->index, claimed->index);
}

TEST(WorkQueueTest, StopSentinelCrossesQueues) {
  const std::string dir = freshDir("stop");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue coordinator(dir, "coordinator");
  WorkQueue worker(dir, "worker");

  EXPECT_FALSE(worker.stopRequested());
  coordinator.requestStop();
  EXPECT_TRUE(worker.stopRequested());

  const QueueRunStats stats =
      runQueuedInstances(suite, manifest, store, worker, nullptr);
  EXPECT_TRUE(stats.stopped);
  EXPECT_EQ(stats.executed, 0u);

  coordinator.clearStop();
  EXPECT_FALSE(worker.stopRequested());
}

TEST(WorkQueueTest, PartialOutcomeIsReleasedNotStored) {
  const std::string dir = freshDir("partial");
  InstanceSuite suite("unit-queue");
  BatchInstance instance;
  instance.id = "cut/s0/none";
  instance.group = "cut";
  instance.job = [](const BatchInstance&,
                    const StopToken*) -> InstanceOutcome {
    InstanceOutcome outcome;  // a job wound down by a stop mid-increment
    outcome.hasReport = false;
    outcome.extras.add("accepted", 1.0);
    outcome.extras.add("run_stopped", 1.0);
    return outcome;
  };
  suite.add(std::move(instance));
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue queue(dir, "w");

  const QueueRunStats stats =
      runQueuedInstances(suite, manifest, store, queue, nullptr);
  EXPECT_TRUE(stats.stopped);
  EXPECT_EQ(stats.executed, 0u);
  EXPECT_EQ(store.recordCount(), 0u);
  // The claim was released, so a later (resumed) participant retries.
  const auto again = queue.claim(store, manifest);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->index, 0u);
}

TEST(WorkQueueTest, ThreeWorkersMatchSingleProcessByteIdentical) {
  const InstanceSuite suite = smallSuite();
  BatchJsonOptions json;
  json.timing = false;
  const std::string reference =
      batchReportJson("unit", runBatch(suite, {}), json);

  const std::string dir = freshDir("distributed");
  {
    SweepStore store(dir);
    const SweepManifest manifest = makeManifest("custom", {}, suite);
    writeManifest(dir, manifest);
    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&, w] {
        // Each participant owns its store/queue objects, exactly like a
        // separate process sharing the directory would.
        SweepStore workerStore(dir);
        WorkQueue queue(dir, "worker-" + std::to_string(w));
        const auto loaded = readManifest(dir);
        ASSERT_TRUE(loaded.has_value());
        const QueueRunStats stats = runQueuedInstances(
            suite, *loaded, workerStore, queue, nullptr);
        EXPECT_FALSE(stats.stopped);
      });
    }
    for (std::thread& t : workers) t.join();
    WorkQueue merger(dir, "merger");
    EXPECT_TRUE(merger.allDone(store, manifest));
  }

  SweepStore store(dir);
  BatchReport merged = reportFromStore(suite, store);
  EXPECT_EQ(merged.completed, suite.size());
  EXPECT_FALSE(merged.stopped);
  EXPECT_EQ(batchReportJson("unit", merged, json), reference);
}

TEST(WorkQueueTest, ReportFromStoreMarksMissingRecordsNotRun) {
  const std::string dir = freshDir("missing");
  const InstanceSuite suite = smallSuite();
  const SweepManifest manifest = makeManifest("custom", {}, suite);
  SweepStore store(dir);
  WorkQueue queue(dir, "solo");

  // Run exactly one instance, then merge.
  const auto item = queue.claim(store, manifest);
  ASSERT_TRUE(item.has_value());
  const InstanceOutcome outcome =
      runBatchInstance(suite.instances()[item->index], nullptr);
  ASSERT_TRUE(store.store(item->fingerprint, suite.name(), item->id,
                          outcome));
  queue.complete(*item);

  const BatchReport merged = reportFromStore(suite, store);
  EXPECT_EQ(merged.completed, 1u);
  EXPECT_TRUE(merged.stopped);  // incomplete merge is marked as such
  EXPECT_TRUE(merged.results[0].ran);
  EXPECT_TRUE(merged.results[0].cached);
  for (std::size_t i = 1; i < merged.results.size(); ++i) {
    EXPECT_FALSE(merged.results[i].ran);
    EXPECT_EQ(merged.results[i].id, suite.instances()[i].id);
  }
}

}  // namespace
}  // namespace ides
