// Property-based sweeps: schedule invariants on randomly generated
// instances, across seeds and strategies.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

struct Case {
  std::uint64_t seed;
  Strategy strategy;
};

std::string caseName(const ::testing::TestParamInfo<Case>& info) {
  return std::string(toString(info.param.strategy)) + "_seed" +
         std::to_string(info.param.seed);
}

class ScheduleInvariants : public ::testing::TestWithParam<Case> {
 protected:
  static SuiteConfig config() {
    return ides::testing::smallSuiteConfig(80, 40);
  }
};

TEST_P(ScheduleInvariants, HoldOnGeneratedInstances) {
  const Case c = GetParam();
  const Suite suite = buildSuite(config(), c.seed);
  const SystemModel& sys = suite.system;
  DesignerOptions opts;
  opts.sa.iterations = 600;
  IncrementalDesigner designer(sys, suite.profile, opts);
  const DesignResult r = designer.run(c.strategy);
  ASSERT_TRUE(r.feasible);

  // Merge frozen + current: the complete static cyclic schedule.
  Schedule all;
  all.merge(designer.frozenSchedule());
  all.merge(r.schedule);

  const TdmaBus& bus = sys.architecture().bus();
  const Time H = sys.hyperperiod();

  // (1) Every process instance exists exactly once per hyperperiod and
  //     runs inside [release, deadline] on an allowed node.
  for (const ProcessGraph& g : sys.graphs()) {
    if (sys.application(g.application).kind == AppKind::Future) continue;
    for (std::int64_t k = 0; k < sys.instanceCount(g.id); ++k) {
      for (ProcessId p : g.processes) {
        ASSERT_TRUE(all.hasProcess(p, static_cast<std::int32_t>(k)));
        const auto& e = all.processEntry(p, static_cast<std::int32_t>(k));
        EXPECT_GE(e.start, g.releaseOf(k));
        EXPECT_LE(e.end, g.deadlineOf(k));
        EXPECT_TRUE(sys.process(p).allowedOn(e.node));
        EXPECT_EQ(e.end - e.start, sys.process(p).wcetOn(e.node));
      }
    }
  }

  // (2) No two executions overlap on any node.
  std::vector<IntervalSet> nodeBusy(sys.architecture().nodeCount());
  for (const ScheduledProcess& sp : all.processes()) {
    EXPECT_FALSE(nodeBusy[sp.node.index()].intersects({sp.start, sp.end}))
        << "overlap on node " << sp.node.value;
    nodeBusy[sp.node.index()].add({sp.start, sp.end});
  }

  // (3) Messages: inside the sender's slot, capacity respected, precedence
  //     satisfied at both ends.
  std::unordered_map<std::int64_t, Time> slotLoad;  // (slot,round) -> ticks
  for (const ScheduledMessage& sm : all.messages()) {
    const Message& msg = sys.message(sm.mid);
    const auto& src = all.processEntry(msg.src, sm.instance);
    const auto& dst = all.processEntry(msg.dst, sm.instance);
    EXPECT_EQ(sm.slotIndex, bus.slotOfNode(src.node));
    EXPECT_NE(src.node, dst.node) << "local message on the bus";
    EXPECT_GE(sm.start, bus.slotStart(sm.round, sm.slotIndex));
    EXPECT_LE(sm.end, bus.slotEnd(sm.round, sm.slotIndex));
    EXPECT_GE(sm.start, src.end);
    EXPECT_GE(dst.start, sm.end);
    EXPECT_LE(sm.end, H);
    slotLoad[static_cast<std::int64_t>(sm.slotIndex) * 1000000 + sm.round] +=
        sm.end - sm.start;
  }
  for (const auto& [key, ticks] : slotLoad) {
    const std::size_t slot = static_cast<std::size_t>(key / 1000000);
    EXPECT_LE(ticks, bus.slot(slot).length);
  }

  // (4) Same-node dependencies still respect precedence.
  for (const Message& msg : sys.messages()) {
    const GraphId g = msg.graph;
    if (sys.application(sys.graph(g).application).kind == AppKind::Future) {
      continue;
    }
    for (std::int64_t k = 0; k < sys.instanceCount(g); ++k) {
      const auto& src = all.processEntry(msg.src, static_cast<std::int32_t>(k));
      const auto& dst = all.processEntry(msg.dst, static_cast<std::int32_t>(k));
      if (src.node == dst.node) {
        EXPECT_GE(dst.start, src.end);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleInvariants,
    ::testing::Values(Case{11, Strategy::AdHoc},
                      Case{11, Strategy::MappingHeuristic},
                      Case{11, Strategy::SimulatedAnnealing},
                      Case{12, Strategy::AdHoc},
                      Case{12, Strategy::MappingHeuristic},
                      Case{13, Strategy::AdHoc},
                      Case{13, Strategy::MappingHeuristic},
                      Case{14, Strategy::SimulatedAnnealing},
                      Case{15, Strategy::MappingHeuristic}),
    caseName);

// Objective monotonicity property: adding load can only reduce slack-based
// quality. Compare the frozen baseline's metrics with the post-current
// metrics under the same profile.
class LoadMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoadMonotonicity, CurrentApplicationNeverIncreasesSlackMetrics) {
  const Suite suite =
      buildSuite(ides::testing::smallSuiteConfig(60, 30), GetParam());
  IncrementalDesigner designer(suite.system, suite.profile);
  const DesignResult ah = designer.run(Strategy::AdHoc);
  ASSERT_TRUE(ah.feasible);

  const SlackInfo before = extractSlack(designer.frozenBase().state);
  const PlatformState afterState = designer.stateWith(ah);
  const SlackInfo after = extractSlack(afterState);
  const DesignMetrics mBefore = computeMetrics(before, suite.profile);
  const DesignMetrics mAfter = computeMetrics(after, suite.profile);

  EXPECT_LE(after.totalNodeSlack(), before.totalNodeSlack());
  EXPECT_LE(after.totalBusFreeTicks(), before.totalBusFreeTicks());
  EXPECT_LE(mAfter.c2p, mBefore.c2p);
  EXPECT_LE(mAfter.c2mBytes, mBefore.c2mBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoadMonotonicity,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace ides
