// End-to-end integration: the full paper workflow on generated instances.
#include <gtest/gtest.h>

#include "core/future_fit.h"
#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

SuiteConfig e2eConfig() {
  SuiteConfig cfg = ides::testing::smallSuiteConfig(80, 32);
  cfg.futureAppCount = 3;
  return cfg;
}

class EndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEnd, FullWorkflowHoldsItsInvariants) {
  const Suite suite = buildSuite(e2eConfig(), GetParam());
  DesignerOptions opts;
  opts.sa.iterations = 1000;
  IncrementalDesigner designer(suite.system, suite.profile, opts);

  const DesignResult ah = designer.run(Strategy::AdHoc);
  const DesignResult mh = designer.run(Strategy::MappingHeuristic);
  ASSERT_TRUE(ah.feasible);
  ASSERT_TRUE(mh.feasible);

  // MH never loses to AH on the objective (it starts from AH's solution).
  EXPECT_LE(mh.objective, ah.objective + 1e-9);

  // Future-fit counts: MH must not fit fewer candidates than... that is a
  // statistical claim; per instance we only require the checks to be clean
  // and count both.
  int ahFits = 0, mhFits = 0;
  const PlatformState afterAh = designer.stateWith(ah);
  const PlatformState afterMh = designer.stateWith(mh);
  for (ApplicationId app :
       suite.system.applicationsOfKind(AppKind::Future)) {
    ahFits += tryMapFutureApplication(suite.system, app, afterAh).fits;
    mhFits += tryMapFutureApplication(suite.system, app, afterMh).fits;
  }
  EXPECT_GE(ahFits, 0);
  EXPECT_GE(mhFits, 0);
}

TEST_P(EndToEnd, RequirementA_FrozenApplicationsUntouched) {
  const Suite suite = buildSuite(e2eConfig(), GetParam());
  IncrementalDesigner designer(suite.system, suite.profile);
  const Schedule& frozenBefore = designer.frozenSchedule();

  // Capture frozen entries, run a strategy, compare.
  std::vector<ScheduledProcess> before(frozenBefore.processes());
  const DesignResult mh = designer.run(Strategy::MappingHeuristic);
  ASSERT_TRUE(mh.feasible);
  const Schedule& frozenAfter = designer.frozenSchedule();
  ASSERT_EQ(before.size(), frozenAfter.processes().size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].start, frozenAfter.processes()[i].start);
    EXPECT_EQ(before[i].end, frozenAfter.processes()[i].end);
    EXPECT_EQ(before[i].node, frozenAfter.processes()[i].node);
  }
  // The current application's schedule avoids every frozen interval.
  for (const ScheduledProcess& cur : mh.schedule.processes()) {
    for (const ScheduledProcess& old : before) {
      if (cur.node != old.node) continue;
      EXPECT_FALSE((Interval{cur.start, cur.end}.overlaps(
          {old.start, old.end})))
          << "current process overlaps frozen process";
    }
  }
}

TEST_P(EndToEnd, MetricsAgreeWithScheduleDerivedSlack) {
  const Suite suite = buildSuite(e2eConfig(), GetParam());
  IncrementalDesigner designer(suite.system, suite.profile);
  const DesignResult ah = designer.run(Strategy::AdHoc);
  ASSERT_TRUE(ah.feasible);
  // Recompute metrics from the committed state: must match the reported
  // ones exactly (the evaluator used an identical pipeline).
  const PlatformState after = designer.stateWith(ah);
  const SlackInfo slack = extractSlack(after);
  const DesignMetrics recomputed = computeMetrics(slack, suite.profile);
  EXPECT_DOUBLE_EQ(recomputed.c1p, ah.metrics.c1p);
  EXPECT_DOUBLE_EQ(recomputed.c1m, ah.metrics.c1m);
  EXPECT_EQ(recomputed.c2p, ah.metrics.c2p);
  EXPECT_EQ(recomputed.c2mBytes, ah.metrics.c2mBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEnd, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ides
