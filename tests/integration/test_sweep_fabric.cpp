// Sweep fabric end-to-end (slow suite): racing workers over the HTTP
// coordinator — first against the SweepCoordinator API directly, then
// through the full daemon stack (HttpServer + routeRequest +
// RemoteWorkQueue over real sockets) — must leave a merged result
// byte-identical (timing off) to the single-process runBatch path. The
// crash/stall process-kill variants of this invariant live in the
// sweep-fault CI job, which SIGKILLs real worker processes.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "serve/daemon.h"
#include "serve/http_server.h"
#include "serve/sweep_coordinator.h"
#include "store/remote_queue.h"
#include "store/sweep_store.h"
#include "store/work_queue.h"
#include "util/http_client.h"
#include "util/stop_token.h"

namespace ides {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ides_fabric_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string referenceJson(const InstanceSuite& suite,
                          const SweepScale& scale) {
  BatchJsonOptions json;
  json.scale = scale.name;
  json.timing = false;
  return batchReportJson("sweep_quality", runBatch(suite, {}), json);
}

TEST(SweepFabricTest, CoordinatorWorkersMatchSingleProcessByteIdentical) {
  const SweepScale scale = sweepScaleNamed("smoke");
  const InstanceSuite suite = namedSweep("quality", scale);
  const std::string reference = referenceJson(suite, scale);

  SweepCoordinator coordinator(freshDir("api"));
  coordinator.create("k", "quality", "smoke");

  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      const std::string worker = "worker-" + std::to_string(w);
      // Rebuild the suite from the published manifest, exactly like a
      // remote process would.
      const InstanceSuite local = suiteFromManifest(
          parseManifestJson(coordinator.manifestText("k")));
      for (;;) {
        const CoordinatorClaim claim =
            coordinator.claim("k", worker, 600.0);
        if (claim.kind == CoordinatorClaim::Kind::Done) break;
        if (claim.kind == CoordinatorClaim::Kind::Wait) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        const InstanceOutcome outcome = runBatchInstance(
            local.instances()[claim.item.index], nullptr);
        (void)coordinator.complete(
            "k", worker, claim.item.fingerprint,
            renderSweepRecord(claim.item.fingerprint, local.name(),
                              claim.item.id, outcome));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_TRUE(coordinator.status("k").done);
  const std::optional<std::string> result = coordinator.resultJson("k");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, reference);
}

TEST(SweepFabricTest, HttpTransportMatchesSingleProcessByteIdentical) {
  const SweepScale scale = sweepScaleNamed("smoke");
  const InstanceSuite suite = namedSweep("quality", scale);
  const std::string reference = referenceJson(suite, scale);

  // The daemon, in-process: real sockets, the production router.
  const std::string storeDir = freshDir("http");
  JobManagerOptions jobOptions;
  jobOptions.workers = 1;
  JobManager jobs(jobOptions);
  SweepCoordinator coordinator(storeDir);
  ServeRuntime runtime{jobs, &coordinator, storeDir};
  HttpServer server("127.0.0.1", 0);
  StopToken serverStop;
  std::thread serving([&] {
    server.serve(
        [&](const HttpRequest& request) {
          return routeRequest(runtime, request);
        },
        &serverStop);
  });
  const std::string base =
      "http://127.0.0.1:" + std::to_string(server.port());

  HttpUrl url = *parseHttpUrl(base);
  const HttpClientResult created = httpRequest(
      url, "POST", "/sweeps/e2e",
      "{\"sweep\": \"quality\", \"scale\": \"smoke\"}");
  ASSERT_TRUE(created.ok) << created.error;
  ASSERT_EQ(created.status, 200) << created.body;

  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      RemoteWorkQueue remote(base + "/e2e",
                             "worker-" + std::to_string(w), 600.0);
      const std::optional<SweepManifest> manifest =
          remote.fetchManifest(10.0, nullptr);
      ASSERT_TRUE(manifest.has_value()) << remote.failureReason();
      const InstanceSuite local = suiteFromManifest(*manifest);
      while (!remote.allDone()) {
        const QueueRunStats stats =
            runSweepParticipant(local, remote, nullptr);
        ASSERT_FALSE(stats.failed) << remote.failureReason();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  const HttpClientResult result =
      httpRequest(url, "GET", "/sweeps/e2e/result", "");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.status, 200) << result.body;
  EXPECT_EQ(result.body, reference);

  // While we have a live daemon with a store: healthz reports it healthy.
  const HttpClientResult health = httpRequest(url, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"store\": \"ok\""), std::string::npos);

  serverStop.requestStop();
  serving.join();
}

}  // namespace
}  // namespace ides
