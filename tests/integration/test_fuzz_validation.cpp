// Fuzz sweep: random instances, all strategies, checked with the library's
// own invariant checker (sched/validate) — the executable specification.
#include <gtest/gtest.h>

#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "sched/validate.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t nodes;
  std::size_t existing;
  std::size_t current;
};

std::string fuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  // Built up with += (not one chained +) to sidestep a GCC 12 -Wrestrict
  // false positive on "literal" + std::string rvalue chains at -O2.
  std::string name = "n";
  name += std::to_string(info.param.nodes);
  name += "_e";
  name += std::to_string(info.param.existing);
  name += "_c";
  name += std::to_string(info.param.current);
  name += "_s";
  name += std::to_string(info.param.seed);
  return name;
}

class FuzzValidation : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzValidation, EveryStrategyProducesAValidatedSchedule) {
  const FuzzCase c = GetParam();
  SuiteConfig cfg = ides::testing::smallSuiteConfig(c.existing, c.current);
  cfg.nodeCount = c.nodes;
  // Keep the bus round compatible with the base period for any node count:
  // round = nodes * slot must divide 6000 (slot 20 -> nodes in {2,3,4,5,6}).
  const Suite suite = buildSuite(cfg, c.seed);
  DesignerOptions opts;
  opts.sa.iterations = 400;
  IncrementalDesigner designer(suite.system, suite.profile, opts);

  std::vector<GraphId> graphs =
      suite.system.graphsOfKind(AppKind::Existing);
  const auto cur = suite.system.graphsOfKind(AppKind::Current);
  graphs.insert(graphs.end(), cur.begin(), cur.end());

  for (Strategy s : {Strategy::AdHoc, Strategy::MappingHeuristic,
                     Strategy::SimulatedAnnealing}) {
    const DesignResult r = designer.run(s);
    ASSERT_TRUE(r.feasible) << toString(s);
    Schedule all;
    all.merge(designer.frozenSchedule());
    all.merge(r.schedule);
    const ValidationReport report =
        validateSchedule(suite.system, all, graphs);
    EXPECT_TRUE(report.ok()) << toString(s) << ": " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzValidation,
    ::testing::Values(FuzzCase{101, 4, 60, 24}, FuzzCase{102, 4, 60, 36},
                      FuzzCase{103, 2, 30, 12}, FuzzCase{104, 6, 90, 36},
                      FuzzCase{105, 3, 45, 18}, FuzzCase{106, 5, 75, 30},
                      FuzzCase{107, 4, 80, 20}, FuzzCase{108, 6, 60, 48}),
    fuzzName);

}  // namespace
}  // namespace ides
