// Lifecycle scenarios: the serialization round-trip and regeneration
// contracts, generator determinism, validity-by-construction of the event
// stream, applyEvent's replay validation, and config range checks.
#include "lifecycle/lifecycle_scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace ides {
namespace {

/// Smaller than the default 50-step scenario so the suite stays fast, but
/// with every event kind reachable.
ScenarioConfig smallConfig(std::uint64_t seed = 1, int steps = 20) {
  ScenarioConfig c;
  c.seed = seed;
  c.steps = steps;
  c.nodeCount = 4;
  c.speedPercents = {100, 80, 125};
  c.initialGraphs = 2;
  c.minLiveGraphs = 1;
  c.maxLiveGraphs = 4;
  c.graphProcessesMin = 4;
  c.graphProcessesMax = 8;
  return c;
}

TEST(LifecycleScenario, JsonRoundTripIsByteIdentical) {
  const LifecycleScenario scenario = generateScenario(smallConfig(3));
  const std::string json = scenarioJson(scenario);
  const LifecycleScenario parsed = parseScenario(json);
  EXPECT_EQ(parsed, scenario);
  EXPECT_EQ(scenarioJson(parsed), json);
}

TEST(LifecycleScenario, ParsedConfigRegeneratesTheParsedStream) {
  // The durability contract: a scenario file is regenerable from its
  // embedded config alone.
  const LifecycleScenario scenario = generateScenario(smallConfig(7));
  const LifecycleScenario parsed = parseScenario(scenarioJson(scenario));
  EXPECT_EQ(generateScenario(parsed.config), parsed);
}

TEST(LifecycleScenario, SameSeedIsDeterministicDifferentSeedsDiverge) {
  const LifecycleScenario a = generateScenario(smallConfig(11));
  const LifecycleScenario b = generateScenario(smallConfig(11));
  EXPECT_EQ(a, b);
  const LifecycleScenario c = generateScenario(smallConfig(12));
  EXPECT_NE(a.events, c.events);
}

TEST(LifecycleScenario, GeneratedStreamReplaysWithinTheConfiguredBounds) {
  const ScenarioConfig config = smallConfig(5, 40);
  const LifecycleScenario scenario = generateScenario(config);
  ASSERT_EQ(scenario.events.size(), static_cast<std::size_t>(config.steps));

  LivingDesign design = initialDesign(config);
  std::set<std::uint64_t> seenUids;
  for (std::size_t i = 0; i < scenario.events.size(); ++i) {
    const LifecycleEvent& event = scenario.events[i];
    ASSERT_NO_THROW(applyEvent(design, event)) << "event " << i;
    if (event.kind == LifecycleEventKind::AddGraph) {
      // Uids are never reused, so placements can be keyed by uid forever.
      EXPECT_TRUE(seenUids.insert(event.uid).second) << "event " << i;
    }

    // The first initialGraphs events are the unconditional AddGraph prefix;
    // after it the live count stays within [minLiveGraphs, maxLiveGraphs].
    if (i < config.initialGraphs) {
      EXPECT_EQ(event.kind, LifecycleEventKind::AddGraph) << "event " << i;
      EXPECT_EQ(design.graphs.size(), i + 1);
    } else {
      EXPECT_GE(design.graphs.size(), config.minLiveGraphs) << "event " << i;
      EXPECT_LE(design.graphs.size(), config.maxLiveGraphs) << "event " << i;
    }

    for (const LifecycleGraphSpec& g : design.graphs) {
      EXPECT_GE(g.processCount, config.graphProcessesMin);
      EXPECT_LE(g.processCount, config.graphProcessesMax);
      // Periods come from the divisor chain, deadlines stay above the
      // configured floor even after repeated tightening.
      EXPECT_TRUE(std::any_of(config.periodDivisors.begin(),
                              config.periodDivisors.end(),
                              [&](Time d) {
                                return g.period == config.basePeriod / d;
                              }))
          << "uid " << g.uid;
      EXPECT_LE(g.offset + g.deadline, g.period);
      EXPECT_GE(g.deadline,
                g.period * config.minDeadlinePercent / 100);
    }
    for (const int speed : design.speedPercents) {
      EXPECT_GE(speed, config.speedMinPercent);
      EXPECT_LE(speed, config.speedMaxPercent);
    }
  }
}

TEST(LifecycleScenario, ApplyEventRejectsCorruptEvents) {
  const ScenarioConfig config = smallConfig();
  const LifecycleScenario scenario = generateScenario(config);
  LivingDesign design = initialDesign(config);
  for (const LifecycleEvent& event : scenario.events) {
    applyEvent(design, event);
  }
  ASSERT_FALSE(design.graphs.empty());

  LifecycleEvent remove;
  remove.kind = LifecycleEventKind::RemoveGraph;
  remove.uid = 0xdead;  // no such graph
  EXPECT_THROW(applyEvent(design, remove), std::invalid_argument);

  LifecycleEvent duplicate;
  duplicate.kind = LifecycleEventKind::AddGraph;
  duplicate.uid = design.graphs.front().uid;
  duplicate.add = design.graphs.front();
  EXPECT_THROW(applyEvent(design, duplicate), std::invalid_argument);

  LifecycleEvent tighten;
  tighten.kind = LifecycleEventKind::DeadlineTighten;
  tighten.uid = design.graphs.front().uid;
  tighten.deadline = design.graphs.front().period + 1;  // out of the window
  EXPECT_THROW(applyEvent(design, tighten), std::invalid_argument);

  LifecycleEvent perturb;
  perturb.kind = LifecycleEventKind::PlatformPerturb;
  perturb.node = config.nodeCount;  // out of range
  perturb.speedPercent = 100;
  EXPECT_THROW(applyEvent(design, perturb), std::invalid_argument);
}

TEST(LifecycleScenario, ParseRejectsStreamsThatBreakTheLivingDesign) {
  // A hand-edited scenario renders fine but must fail the replay
  // validation inside parseScenario.
  LifecycleScenario scenario = generateScenario(smallConfig());
  LifecycleEvent bogus;
  bogus.kind = LifecycleEventKind::RemoveGraph;
  bogus.uid = 0xdead;
  scenario.events.push_back(bogus);
  EXPECT_THROW((void)parseScenario(scenarioJson(scenario)),
               std::invalid_argument);
}

TEST(LifecycleScenario, ParseRejectsMalformedText) {
  EXPECT_THROW((void)parseScenario("not json"), std::runtime_error);
  EXPECT_THROW((void)parseScenario("[1, 2]"), std::runtime_error);
}

TEST(LifecycleScenario, ConfigValidationNamesTheOffendingKnob) {
  const auto rejects = [](void (*tweak)(ScenarioConfig&),
                          const char* expected) {
    ScenarioConfig c;
    tweak(c);
    try {
      validateScenarioConfig(c);
      FAIL() << "accepted config expected to fail: " << expected;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(expected), std::string::npos)
          << e.what();
    }
  };
  rejects([](ScenarioConfig& c) { c.steps = 0; }, "steps");
  rejects([](ScenarioConfig& c) { c.minLiveGraphs = 0; }, "minLiveGraphs");
  rejects([](ScenarioConfig& c) { c.minLiveGraphs = 9; },
          "minLiveGraphs must be <= maxLiveGraphs");
  rejects([](ScenarioConfig& c) { c.periodDivisors = {2, 5}; },
          "divisibility chain");
  rejects([](ScenarioConfig& c) { c.periodDivisors = {3}; },
          "divide basePeriod");
  rejects([](ScenarioConfig& c) { c.tmin = 3000; }, "tmin");
  rejects([](ScenarioConfig& c) { c.probRemove = 0.9; },
          "sum to <= 1");
  rejects([](ScenarioConfig& c) { c.probSpecChange = -0.1; },
          "in [0, 1]");
  rejects([](ScenarioConfig& c) { c.graphProcessesMin = 30; },
          "graphProcesses");
  rejects([](ScenarioConfig& c) { c.deadlineTightenPercent = 0; },
          "deadlineTightenPercent");
  rejects([](ScenarioConfig& c) { c.speedPercents = {100, -5}; },
          "speedPercents");
}

}  // namespace
}  // namespace ides
