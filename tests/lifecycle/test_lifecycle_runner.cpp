// Lifecycle replay: report determinism across runs and worker counts,
// warm/cold policy behavior, stop-token truncation, the spec-seeded model
// rebuild contract, and the optimizer warm-start overload against a
// hand-built run from the same seed.
#include "lifecycle/lifecycle_runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/incremental_designer.h"
#include "core/initial_mapping.h"
#include "core/simulated_annealing.h"
#include "model/model_io.h"
#include "tgen/benchmark_suite.h"
#include "test_helpers.h"

namespace ides {
namespace {

/// Small, fast scenario: 4 nodes, graphs of 4-8 processes, 10 events.
ScenarioConfig smallConfig(std::uint64_t seed = 1, int steps = 10) {
  ScenarioConfig c;
  c.seed = seed;
  c.steps = steps;
  c.nodeCount = 4;
  c.speedPercents = {100, 80, 125};
  c.initialGraphs = 2;
  c.minLiveGraphs = 1;
  c.maxLiveGraphs = 4;
  c.graphProcessesMin = 4;
  c.graphProcessesMax = 8;
  return c;
}

LifecycleOptions fastOptions(StartPolicy policy = StartPolicy::Warm) {
  LifecycleOptions options;
  options.strategy = "SA";
  options.policy = policy;
  options.designer.sa.iterations = 120;
  return options;
}

TEST(LifecycleRunner, ReportJsonIsByteIdenticalAcrossRuns) {
  const LifecycleScenario scenario = generateScenario(smallConfig(5));
  const LifecycleReport first = runLifecycle(scenario, fastOptions());
  const LifecycleReport second = runLifecycle(scenario, fastOptions());

  EXPECT_EQ(first.steps.size(), scenario.events.size());
  EXPECT_GT(first.feasibleSteps, 0u);
  const std::string json = lifecycleReportJson(first, /*timing=*/false);
  EXPECT_EQ(json, lifecycleReportJson(second, /*timing=*/false));
  EXPECT_NE(json.find("\"kind\": \"lifecycle_report\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario_seed\": \"5\""), std::string::npos);
}

TEST(LifecycleRunner, ReportJsonIsByteIdenticalAcrossPsaWorkerCounts) {
  // The whole point of the deterministic rendering: thread count is a
  // result-neutral knob, so a PSA replay diffs clean across worker counts.
  const LifecycleScenario scenario = generateScenario(smallConfig(9));
  LifecycleOptions options = fastOptions();
  options.strategy = "PSA";
  options.designer.sa.iterations = 60;
  options.designer.psa.restarts = 2;

  options.designer.psa.threads = 1;
  const LifecycleReport serial = runLifecycle(scenario, options);
  options.designer.psa.threads = 4;
  const LifecycleReport parallel = runLifecycle(scenario, options);
  EXPECT_EQ(lifecycleReportJson(serial, /*timing=*/false),
            lifecycleReportJson(parallel, /*timing=*/false));
}

TEST(LifecycleRunner, ColdPolicyNeverWarmStartsWarmPolicyDoes) {
  const LifecycleScenario scenario = generateScenario(smallConfig());
  const LifecycleReport warm =
      runLifecycle(scenario, fastOptions(StartPolicy::Warm));
  const LifecycleReport cold =
      runLifecycle(scenario, fastOptions(StartPolicy::Cold));

  EXPECT_GT(warm.warmStarts, 0u);
  EXPECT_EQ(cold.warmStarts, 0u);
  for (const LifecycleStep& step : cold.steps) {
    EXPECT_FALSE(step.warmStart) << "step " << step.step;
  }
  EXPECT_NE(lifecycleReportJson(cold).find("\"policy\": \"cold\""),
            std::string::npos);
}

TEST(LifecycleRunner, StopTokenTruncatesTheStreamBetweenSteps) {
  const LifecycleScenario scenario = generateScenario(smallConfig());

  StopToken preFired;
  preFired.requestStop();
  LifecycleOptions options = fastOptions();
  options.stop = &preFired;
  const LifecycleReport empty = runLifecycle(scenario, options);
  EXPECT_TRUE(empty.stopped);
  EXPECT_TRUE(empty.steps.empty());

  // Fire after the second step's final evaluation: the two finished steps
  // stay untainted, the rest of the stream is skipped.
  StopToken midRun;
  std::size_t finals = 0;
  LifecycleOptions truncating = fastOptions();
  truncating.stop = &midRun;
  truncating.progress = [&](const ProgressEvent& event) {
    if (event.phase == "final" && ++finals == 2) midRun.requestStop();
  };
  const LifecycleReport truncated = runLifecycle(scenario, truncating);
  EXPECT_TRUE(truncated.stopped);
  ASSERT_EQ(truncated.steps.size(), 2u);
  EXPECT_FALSE(truncated.steps[0].stopped);
  EXPECT_FALSE(truncated.steps[1].stopped);
}

TEST(LifecycleRunner, UnknownStrategyThrowsListingTheValidSet) {
  const LifecycleScenario scenario = generateScenario(smallConfig());
  LifecycleOptions options = fastOptions();
  options.strategy = "annealer";
  EXPECT_THROW((void)runLifecycle(scenario, options), std::invalid_argument);
}

TEST(LifecycleRunner, RemoveThenReaddRebuildsTheModelBitIdentically) {
  // The determinism the warm policy rests on: a graph's structure depends
  // only on its spec (uid-derived seed), so removing a sibling and adding
  // it back reproduces the exact model bytes.
  const ScenarioConfig config = smallConfig();
  const LifecycleScenario scenario = generateScenario(config);
  LivingDesign design = initialDesign(config);
  applyEvent(design, scenario.events[0]);
  applyEvent(design, scenario.events[1]);
  const std::string before =
      modelToString(buildDesignModel(config, design).system);

  const LifecycleGraphSpec spec = design.graphs.back();
  LifecycleEvent remove;
  remove.kind = LifecycleEventKind::RemoveGraph;
  remove.uid = spec.uid;
  applyEvent(design, remove);
  EXPECT_NE(modelToString(buildDesignModel(config, design).system), before);

  LifecycleEvent readd;
  readd.kind = LifecycleEventKind::AddGraph;
  readd.uid = spec.uid;
  readd.add = spec;
  applyEvent(design, readd);
  EXPECT_EQ(modelToString(buildDesignModel(config, design).system), before);
}

TEST(LifecycleRunner, EmptyLivingDesignCannotBeBuilt) {
  const ScenarioConfig config = smallConfig();
  EXPECT_THROW((void)buildDesignModel(config, initialDesign(config)),
               std::invalid_argument);
}

// ---- the optimizer warm-start overload ------------------------------------

class LifecycleWarmStart : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = std::make_unique<Suite>(
        buildSuite(ides::testing::smallSuiteConfig(), 21));
    options_.sa.iterations = 400;
    designer_ = std::make_unique<IncrementalDesigner>(
        suite_->system, suite_->profile, options_);
    PlatformState state = designer_->evaluator().baseline();
    const ScheduleOutcome im = initialMapping(suite_->system, state);
    ASSERT_TRUE(im.feasible);
    seed_ = im.mapping;
  }

  std::unique_ptr<Suite> suite_;
  DesignerOptions options_;
  std::unique_ptr<IncrementalDesigner> designer_;
  MappingSolution seed_;
};

TEST_F(LifecycleWarmStart, WarmSaRunMatchesAHandBuiltRunFromTheSeed) {
  const std::unique_ptr<Optimizer> sa =
      StrategyRegistry::builtin().create("SA", options_);
  RunContext context;
  std::vector<std::string> phases;
  context.progress = [&](const ProgressEvent& event) {
    phases.emplace_back(event.phase);
  };
  const RunReport warm = sa->run(designer_->evaluator(), context, &seed_);

  const SaResult direct =
      runSimulatedAnnealing(designer_->evaluator(), seed_, options_.sa);
  EXPECT_TRUE(warm.feasible);
  EXPECT_EQ(warm.mapping, direct.solution);
  EXPECT_EQ(warm.objective, direct.eval.cost);
  // Seed validation + improvement + final evaluation.
  EXPECT_EQ(warm.evaluations, direct.evaluations + 2);
  const std::vector<std::string> expected = {"warm-start", "improve",
                                             "final"};
  EXPECT_EQ(phases, expected);
}

TEST_F(LifecycleWarmStart, NullSeedIsExactlyTheColdRun) {
  const std::unique_ptr<Optimizer> sa =
      StrategyRegistry::builtin().create("SA", options_);
  RunContext viaNull;
  const RunReport fromNull =
      sa->run(designer_->evaluator(), viaNull, nullptr);
  RunContext coldContext;
  const RunReport cold = sa->run(designer_->evaluator(), coldContext);
  EXPECT_EQ(fromNull.mapping, cold.mapping);
  EXPECT_EQ(fromNull.objective, cold.objective);
  EXPECT_EQ(fromNull.evaluations, cold.evaluations);
}

TEST_F(LifecycleWarmStart, InfeasibleSeedFallsBackToTheColdRun) {
  // Push every start hint far past the deadline — a stale-seed stand-in
  // that stays legal (hints always are) but cannot schedule feasibly.
  MappingSolution bad = seed_;
  for (std::size_t i = 0; i < bad.processCount(); ++i) {
    bad.setStartHint(ProcessId{static_cast<std::int32_t>(i)},
                     suite_->system.hyperperiod());
  }
  ASSERT_FALSE(designer_->evaluator().evaluate(bad).feasible);

  const std::unique_ptr<Optimizer> sa =
      StrategyRegistry::builtin().create("SA", options_);
  RunContext warmContext;
  std::vector<std::string> phases;
  warmContext.progress = [&](const ProgressEvent& event) {
    phases.emplace_back(event.phase);
  };
  const RunReport fromBad =
      sa->run(designer_->evaluator(), warmContext, &bad);
  RunContext coldContext;
  const RunReport cold = sa->run(designer_->evaluator(), coldContext);

  EXPECT_EQ(fromBad.mapping, cold.mapping);
  EXPECT_EQ(fromBad.objective, cold.objective);
  // The rejected seed's validation pass is still accounted.
  EXPECT_EQ(fromBad.evaluations, cold.evaluations + 1);
  ASSERT_FALSE(phases.empty());
  EXPECT_EQ(phases.front(), "initial-mapping");
}

TEST(LifecycleStartPolicy, NamesRoundTripAndRejectUnknown) {
  EXPECT_EQ(startPolicyFromString(toString(StartPolicy::Warm)),
            StartPolicy::Warm);
  EXPECT_EQ(startPolicyFromString(toString(StartPolicy::Cold)),
            StartPolicy::Cold);
  EXPECT_THROW((void)startPolicyFromString("tepid"), std::invalid_argument);
}

}  // namespace
}  // namespace ides
