#include "model/graph_algos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::makeDiamondSystem;
using ides::testing::twoNodeArch;
using ides::testing::wcets;

TEST(TopologicalOrder, DiamondRespectsAllEdges) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  const std::vector<ProcessId> order = sys.topoOrder(ids.graph);
  ASSERT_EQ(order.size(), 4u);
  std::unordered_map<ProcessId, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Message& m : sys.messages()) {
    EXPECT_LT(pos.at(m.src), pos.at(m.dst))
        << "edge " << sys.process(m.src).name << " -> "
        << sys.process(m.dst).name;
  }
}

TEST(TopologicalOrder, IndependentProcessesKeepIdOrder) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  const ProcessId p0 = sys.addProcess(g, "A", wcets({10, 10}));
  const ProcessId p1 = sys.addProcess(g, "B", wcets({10, 10}));
  const ProcessId p2 = sys.addProcess(g, "C", wcets({10, 10}));
  sys.finalize();
  EXPECT_EQ(sys.topoOrder(g), (std::vector<ProcessId>{p0, p1, p2}));
}

TEST(CriticalPathPriorities, MonotoneAlongChains) {
  // In a chain, each process's priority strictly exceeds its successor's.
  const SystemModel sys = ides::testing::makeChainSystem(5);
  const GraphId g = sys.graphs()[0].id;
  const std::vector<double> prio = criticalPathPriorities(sys, g);
  for (std::size_t i = 0; i + 1 < prio.size(); ++i) {
    EXPECT_GT(prio[i], prio[i + 1]);
  }
}

TEST(CriticalPathPriorities, SinkPriorityIsItsOwnWcet) {
  const SystemModel sys = ides::testing::makeChainSystem(3, /*wcet=*/12);
  const GraphId g = sys.graphs()[0].id;
  const std::vector<double> prio = criticalPathPriorities(sys, g);
  EXPECT_DOUBLE_EQ(prio.back(), 12.0);
}

TEST(CriticalPathPriorities, DiamondSourceDominates) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  const std::vector<double> prio = criticalPathPriorities(sys, ids.graph);
  // Priorities are in graph-local process order: P1, P2, P3, P4.
  EXPECT_GT(prio[0], prio[1]);
  EXPECT_GT(prio[0], prio[2]);
  EXPECT_GT(prio[1], prio[3]);
  EXPECT_GT(prio[2], prio[3]);
  // P2 (wcet 20) lies on a longer path than P3 (wcet 15).
  EXPECT_GT(prio[1], prio[2]);
}

TEST(CriticalPathPriorities, IncludesMessageLatencyEstimate) {
  // Two-process chain with a message: the source's priority must exceed
  // the sum of both WCET means (the message estimate adds positive time).
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 200);
  const ProcessId p1 = sys.addProcess(g, "P1", wcets({10, 10}));
  const ProcessId p2 = sys.addProcess(g, "P2", wcets({20, 20}));
  sys.addMessage(g, p1, p2, 4);
  sys.finalize();
  const std::vector<double> prio = criticalPathPriorities(sys, g);
  EXPECT_GT(prio[0], 10.0 + 20.0);
}

TEST(CriticalPathLength, MatchesMaxPriority) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  const std::vector<double> prio = criticalPathPriorities(sys, ids.graph);
  EXPECT_DOUBLE_EQ(criticalPathLength(sys, ids.graph),
                   *std::max_element(prio.begin(), prio.end()));
}

}  // namespace
}  // namespace ides
