#include "model/system_model.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::twoNodeArch;
using ides::testing::wcets;

TEST(SystemModel, BuildsDenseIds) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a0 = sys.addApplication("a0", AppKind::Existing);
  const ApplicationId a1 = sys.addApplication("a1", AppKind::Current);
  EXPECT_EQ(a0.index(), 0u);
  EXPECT_EQ(a1.index(), 1u);
  const GraphId g = sys.addGraph(a1, 100);
  EXPECT_EQ(g.index(), 0u);
  const ProcessId p = sys.addProcess(g, "P", wcets({10, 20}));
  EXPECT_EQ(p.index(), 0u);
  EXPECT_EQ(sys.process(p).name, "P");
  EXPECT_EQ(sys.graph(g).processes.size(), 1u);
}

TEST(SystemModel, GraphValidation) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  EXPECT_THROW(sys.addGraph(a, 0), std::invalid_argument);
  EXPECT_THROW(sys.addGraph(a, -5), std::invalid_argument);
  EXPECT_THROW(sys.addGraph(a, 100, 150), std::invalid_argument);  // D > T
  EXPECT_THROW(sys.addGraph(a, 100, 0), std::invalid_argument);
  const GraphId g = sys.addGraph(a, 100, 80);
  EXPECT_EQ(sys.graph(g).deadline, 80);
  const GraphId g2 = sys.addGraph(a, 100);  // deadline defaults to period
  EXPECT_EQ(sys.graph(g2).deadline, 100);
}

TEST(SystemModel, ProcessValidation) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  // Wrong arity.
  EXPECT_THROW(sys.addProcess(g, "P", {10}), std::invalid_argument);
  // No allowed node.
  EXPECT_THROW(sys.addProcess(g, "P", wcets({kNoTime, kNoTime})),
               std::invalid_argument);
  // Non-positive WCET.
  EXPECT_THROW(sys.addProcess(g, "P", wcets({0, 10})), std::invalid_argument);
  EXPECT_THROW(sys.addProcess(g, "P", wcets({-3, 10})),
               std::invalid_argument);
}

TEST(SystemModel, MessageValidation) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g1 = sys.addGraph(a, 100);
  const GraphId g2 = sys.addGraph(a, 100);
  const ProcessId p1 = sys.addProcess(g1, "P1", wcets({10, 10}));
  const ProcessId p2 = sys.addProcess(g1, "P2", wcets({10, 10}));
  const ProcessId q = sys.addProcess(g2, "Q", wcets({10, 10}));
  EXPECT_THROW(sys.addMessage(g1, p1, p1, 4), std::invalid_argument);
  EXPECT_THROW(sys.addMessage(g1, p1, q, 4), std::invalid_argument);
  EXPECT_THROW(sys.addMessage(g1, p1, p2, 0), std::invalid_argument);
  const MessageId m = sys.addMessage(g1, p1, p2, 4);
  EXPECT_EQ(sys.message(m).sizeBytes, 4);
  EXPECT_EQ(sys.outputsOf(p1).size(), 1u);
  EXPECT_EQ(sys.inputsOf(p2).size(), 1u);
}

TEST(SystemModel, GraphOffsetValidation) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  EXPECT_THROW(sys.addGraph(a, 100, kNoTime, -1), std::invalid_argument);
  EXPECT_THROW(sys.addGraph(a, 100, kNoTime, 100), std::invalid_argument);
  EXPECT_THROW(sys.addGraph(a, 100, 80, 30), std::invalid_argument);  // 110>100
  const GraphId g = sys.addGraph(a, 100, kNoTime, 40);
  EXPECT_EQ(sys.graph(g).offset, 40);
  EXPECT_EQ(sys.graph(g).deadline, 60);  // defaults to period - offset
  EXPECT_EQ(sys.graph(g).releaseOf(2), 240);
  EXPECT_EQ(sys.graph(g).deadlineOf(2), 300);
}

TEST(SystemModel, FinalizeComputesHyperperiod) {
  SystemModel sys(twoNodeArch());  // round = 20
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g1 = sys.addGraph(a, 100);
  const GraphId g2 = sys.addGraph(a, 40);
  sys.addProcess(g1, "P", wcets({10, 10}));
  sys.addProcess(g2, "Q", wcets({10, 10}));
  sys.finalize();
  EXPECT_EQ(sys.hyperperiod(), 200);  // lcm(100, 40)
  EXPECT_EQ(sys.instanceCount(g1), 2);
  EXPECT_EQ(sys.instanceCount(g2), 5);
}

TEST(SystemModel, FinalizeRejectsHyperperiodNotMultipleOfRound) {
  SystemModel sys(twoNodeArch());  // round = 20
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 30);
  sys.addProcess(g, "P", wcets({10, 10}));
  EXPECT_THROW(sys.finalize(), std::invalid_argument);
}

TEST(SystemModel, FinalizeRejectsCyclicGraph) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  const ProcessId p1 = sys.addProcess(g, "P1", wcets({10, 10}));
  const ProcessId p2 = sys.addProcess(g, "P2", wcets({10, 10}));
  sys.addMessage(g, p1, p2, 2);
  sys.addMessage(g, p2, p1, 2);
  EXPECT_THROW(sys.finalize(), std::invalid_argument);
}

TEST(SystemModel, FinalizeRejectsOversizedMessage) {
  SystemModel sys(twoNodeArch(/*slotLength=*/10, /*bytesPerTick=*/1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  const ProcessId p1 = sys.addProcess(g, "P1", wcets({10, 10}));
  const ProcessId p2 = sys.addProcess(g, "P2", wcets({10, 10}));
  sys.addMessage(g, p1, p2, 11);  // slot capacity is 10 bytes
  EXPECT_THROW(sys.finalize(), std::invalid_argument);
}

TEST(SystemModel, FinalizeRejectsEmptyGraphAndEmptyModel) {
  SystemModel empty(twoNodeArch());
  EXPECT_THROW(empty.finalize(), std::invalid_argument);

  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  sys.addGraph(a, 100);
  EXPECT_THROW(sys.finalize(), std::invalid_argument);
}

TEST(SystemModel, MutationAfterFinalizeThrows) {
  SystemModel sys = ides::testing::makeDiamondSystem();
  EXPECT_THROW(sys.addApplication("late", AppKind::Current),
               std::logic_error);
}

TEST(SystemModel, FinalizeFailureLeavesModelMutable) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  const ProcessId p1 = sys.addProcess(g, "P1", wcets({10, 10}));
  const ProcessId p2 = sys.addProcess(g, "P2", wcets({10, 10}));
  sys.addMessage(g, p1, p2, 2);
  sys.addMessage(g, p2, p1, 2);  // cycle
  EXPECT_THROW(sys.finalize(), std::invalid_argument);
  EXPECT_FALSE(sys.finalized());
}

TEST(SystemModel, KindQueries) {
  SystemModel sys(twoNodeArch());
  const ApplicationId e = sys.addApplication("e", AppKind::Existing);
  const ApplicationId c = sys.addApplication("c", AppKind::Current);
  const ApplicationId f = sys.addApplication("f", AppKind::Future);
  const GraphId ge = sys.addGraph(e, 100);
  const GraphId gc = sys.addGraph(c, 100);
  const GraphId gf = sys.addGraph(f, 100);
  const ProcessId pe = sys.addProcess(ge, "E", wcets({10, 10}));
  sys.addProcess(gc, "C", wcets({10, 10}));
  sys.addProcess(gf, "F", wcets({10, 10}));
  sys.finalize();

  EXPECT_EQ(sys.processesOfKind(AppKind::Existing),
            std::vector<ProcessId>{pe});
  EXPECT_EQ(sys.graphsOfKind(AppKind::Current), std::vector<GraphId>{gc});
  EXPECT_EQ(sys.applicationsOfKind(AppKind::Future),
            std::vector<ApplicationId>{f});
}

TEST(SystemModel, MinDemandUsesFastestNodeAndInstances) {
  SystemModel sys(twoNodeArch());
  const ApplicationId c = sys.addApplication("c", AppKind::Current);
  const GraphId g1 = sys.addGraph(c, 200);   // 1 instance in H=200
  const GraphId g2 = sys.addGraph(c, 100);   // 2 instances
  sys.addProcess(g1, "A", wcets({30, 20}));  // min 20
  sys.addProcess(g2, "B", wcets({10, 40}));  // min 10, twice
  sys.finalize();
  EXPECT_EQ(sys.minDemandOfKind(AppKind::Current), 20 + 2 * 10);
}

TEST(ProcessAccessors, AllowedNodesAndAverageWcet) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  const ProcessId p = sys.addProcess(g, "P", wcets({30, kNoTime}));
  sys.addProcess(g, "Q", wcets({10, 20}));
  sys.finalize();
  const Process& proc = sys.process(p);
  EXPECT_TRUE(proc.allowedOn(NodeId{0}));
  EXPECT_FALSE(proc.allowedOn(NodeId{1}));
  EXPECT_EQ(proc.allowedNodes(), std::vector<NodeId>{NodeId{0}});
  EXPECT_DOUBLE_EQ(proc.averageWcet(), 30.0);
  EXPECT_DOUBLE_EQ(sys.process(ProcessId{1}).averageWcet(), 15.0);
}

TEST(AppKindNames, ToString) {
  EXPECT_STREQ(toString(AppKind::Existing), "existing");
  EXPECT_STREQ(toString(AppKind::Current), "current");
  EXPECT_STREQ(toString(AppKind::Future), "future");
}

}  // namespace
}  // namespace ides
