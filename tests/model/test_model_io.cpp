#include "model/model_io.h"

#include <gtest/gtest.h>

#include "model/system_model.h"
#include "sched/list_scheduler.h"
#include "test_helpers.h"

namespace ides {
namespace {

const char* kDiamondText = R"(# the slide-5 diamond
arch nodes=2 slot=10 bytes_per_tick=1 speeds=1.0,1.0
app name=example kind=current
graph period=200
process name=P1 wcet=10,-
process name=P2 wcet=-,20
process name=P3 wcet=15,15
process name=P4 wcet=10,-
message src=P1 dst=P2 bytes=4
message src=P1 dst=P3 bytes=4
message src=P2 dst=P4 bytes=4
message src=P3 dst=P4 bytes=4
)";

TEST(ModelIo, ParsesTheDiamond) {
  const SystemModel sys = modelFromString(kDiamondText);
  EXPECT_EQ(sys.architecture().nodeCount(), 2u);
  EXPECT_EQ(sys.processes().size(), 4u);
  EXPECT_EQ(sys.messages().size(), 4u);
  EXPECT_EQ(sys.hyperperiod(), 200);
  EXPECT_TRUE(sys.finalized());
  // P1 pinned to node 0.
  EXPECT_FALSE(sys.process(ProcessId{0}).allowedOn(NodeId{1}));
  EXPECT_EQ(sys.process(ProcessId{1}).wcetOn(NodeId{1}), 20);
}

TEST(ModelIo, ParsedModelSchedulesLikeTheHandBuiltOne) {
  const SystemModel parsed = modelFromString(kDiamondText);
  ides::testing::DiamondIds ids;
  const SystemModel built = ides::testing::makeDiamondSystem(&ids);

  auto run = [](const SystemModel& sys) {
    PlatformState state(sys.architecture(), sys.hyperperiod());
    ScheduleRequest req;
    req.graphs = {sys.graphs()[0].id};
    req.chooseNodes = true;
    return scheduleGraphs(sys, req, state);
  };
  const ScheduleOutcome a = run(parsed);
  const ScheduleOutcome b = run(built);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  for (const ScheduledProcess& sp : b.schedule.processes()) {
    const auto& other = a.schedule.processEntry(sp.pid, sp.instance);
    EXPECT_EQ(other.start, sp.start);
    EXPECT_EQ(other.node, sp.node);
  }
}

TEST(ModelIo, RoundTripsThroughWrite) {
  const SystemModel original = modelFromString(kDiamondText);
  const std::string text = modelToString(original);
  const SystemModel reparsed = modelFromString(text);
  ASSERT_EQ(reparsed.processes().size(), original.processes().size());
  for (std::size_t i = 0; i < original.processes().size(); ++i) {
    EXPECT_EQ(reparsed.processes()[i].wcet, original.processes()[i].wcet);
    EXPECT_EQ(reparsed.processes()[i].name, original.processes()[i].name);
  }
  ASSERT_EQ(reparsed.messages().size(), original.messages().size());
  for (std::size_t i = 0; i < original.messages().size(); ++i) {
    EXPECT_EQ(reparsed.messages()[i].sizeBytes,
              original.messages()[i].sizeBytes);
  }
  EXPECT_EQ(reparsed.hyperperiod(), original.hyperperiod());
}

TEST(ModelIo, GraphAttributesSurvive) {
  const char* text =
      "arch nodes=1 slot=10 bytes_per_tick=1\n"
      "app name=a kind=existing\n"
      "graph period=200 deadline=100 offset=50\n"
      "process name=P wcet=10\n";
  const SystemModel sys = modelFromString(text);
  EXPECT_EQ(sys.graphs()[0].period, 200);
  EXPECT_EQ(sys.graphs()[0].deadline, 100);
  EXPECT_EQ(sys.graphs()[0].offset, 50);
  EXPECT_EQ(sys.applications()[0].kind, AppKind::Existing);
  // And the round trip keeps them.
  const SystemModel again = modelFromString(modelToString(sys));
  EXPECT_EQ(again.graphs()[0].offset, 50);
  EXPECT_EQ(again.graphs()[0].deadline, 100);
}

TEST(ModelIo, ErrorsCarryLineNumbers) {
  auto expectError = [](const char* text, const char* fragment) {
    try {
      modelFromString(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expectError("bogus x=1\n", "unknown keyword");
  expectError("app name=a kind=current\n", "app before arch");
  expectError("arch nodes=1 slot=10 bytes_per_tick=1\nprocess name=P "
              "wcet=1\n", "process before graph");
  expectError("arch nodes=1 slot=10 bytes_per_tick=1\napp name=a "
              "kind=weird\n", "unknown application kind");
  expectError("arch nodes=1 slot=10 bytes_per_tick=1\napp name=a "
              "kind=current\ngraph period=abc\n", "bad period");
  expectError("arch nodes=1 slot=10\n", "missing field");
  expectError("", "no arch line");
}

TEST(ModelIo, SemanticErrorsAreReported) {
  // Cycle -> finalize failure surfaces as invalid_argument.
  const char* cyclic =
      "arch nodes=1 slot=10 bytes_per_tick=1\n"
      "app name=a kind=current\n"
      "graph period=100\n"
      "process name=A wcet=10\n"
      "process name=B wcet=10\n"
      "message src=A dst=B bytes=2\n"
      "message src=B dst=A bytes=2\n";
  EXPECT_THROW(modelFromString(cyclic), std::invalid_argument);

  const char* unknownProc =
      "arch nodes=1 slot=10 bytes_per_tick=1\n"
      "app name=a kind=current\n"
      "graph period=100\n"
      "process name=A wcet=10\n"
      "message src=A dst=Z bytes=2\n";
  EXPECT_THROW(modelFromString(unknownProc), std::invalid_argument);

  const char* dupName =
      "arch nodes=1 slot=10 bytes_per_tick=1\n"
      "app name=a kind=current\n"
      "graph period=100\n"
      "process name=A wcet=10\n"
      "process name=A wcet=10\n";
  EXPECT_THROW(modelFromString(dupName), std::invalid_argument);
}

TEST(ModelIo, CommentsAndBlankLinesIgnored) {
  const char* text =
      "\n# leading comment\n"
      "arch nodes=1 slot=10 bytes_per_tick=1   # trailing comment\n"
      "\napp name=a kind=current\n"
      "graph period=100\n"
      "process name=P wcet=10\n\n";
  EXPECT_NO_THROW(modelFromString(text));
}

}  // namespace
}  // namespace ides
