#include "model/system_stats.h"

#include <gtest/gtest.h>

#include "sched/platform_state.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::wcets;

TEST(SystemStats, DemandCountsKindsSeparately) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  const SystemStats s = computeStats(sys);
  EXPECT_EQ(s.hyperperiod, 200);
  // Existing: E0 (25) + E1 (25); both single-node so mean == value.
  EXPECT_DOUBLE_EQ(s.demandExisting, 50.0);
  // Current: P1 10 + P2 20 + P3 15 + P4 10.
  EXPECT_DOUBLE_EQ(s.demandCurrent, 55.0);
  EXPECT_DOUBLE_EQ(s.demandFuture, 0.0);
  EXPECT_EQ(s.processCount, 6u);
  EXPECT_EQ(s.messageCount, 5u);
}

TEST(SystemStats, UtilizationAgainstCapacity) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  const SystemStats s = computeStats(sys);
  // Capacity = 2 nodes * 200 ticks; demand = 105.
  EXPECT_NEAR(s.utilization, 105.0 / 400.0, 1e-12);
}

TEST(SystemStats, InstancesMultiplyDemand) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId fast = sys.addGraph(a, 100);
  sys.addProcess(fast, "F", {10});
  const GraphId slow = sys.addGraph(a, 200);
  sys.addProcess(slow, "S", {10});
  sys.finalize();
  const SystemStats s = computeStats(sys);
  EXPECT_DOUBLE_EQ(s.demandCurrent, 2 * 10 + 10);  // H=200, F runs twice
}

TEST(SystemStats, BusDemandWeightsInterNodeProbability) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  const SystemStats s = computeStats(sys);
  // 5 messages of 4 bytes, tx = 4 ticks each, inter-node prob = 1/2.
  EXPECT_NEAR(s.busDemandTicks, 5 * 4 * 0.5, 1e-12);
  EXPECT_NEAR(s.busUtilization, 10.0 / 200.0, 1e-12);
}

TEST(SystemStats, NodeOccupancyPercent) {
  const Architecture arch = ides::testing::twoNodeArch();
  PlatformState state(arch, 100);
  state.occupyNode(NodeId{0}, {0, 25});
  const std::vector<double> occ = nodeOccupancyPercent(state);
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_DOUBLE_EQ(occ[0], 25.0);
  EXPECT_DOUBLE_EQ(occ[1], 0.0);
}

TEST(SystemStats, ReportMentionsKeyNumbers) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  const std::string report = statsReport(sys);
  EXPECT_NE(report.find("2 nodes"), std::string::npos);
  EXPECT_NE(report.find("hyperperiod: 200"), std::string::npos);
  EXPECT_NE(report.find("existing 50"), std::string::npos);
  EXPECT_NE(report.find("utilization"), std::string::npos);
}

}  // namespace
}  // namespace ides
