#include "model/dot_export.h"

#include <gtest/gtest.h>

#include "sched/mapping.h"
#include "test_helpers.h"

namespace ides {
namespace {

TEST(DotExport, ContainsGraphStructure) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = ides::testing::makeDiamondSystem(&ids);
  const std::string dot = toDot(sys);
  EXPECT_NE(dot.find("digraph system"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_g0"), std::string::npos);
  EXPECT_NE(dot.find("P1"), std::string::npos);
  EXPECT_NE(dot.find("P4"), std::string::npos);
  // Four edges with byte labels.
  EXPECT_NE(dot.find("4B"), std::string::npos);
  EXPECT_NE(dot.find("p0 -> p1"), std::string::npos);
  // Period/deadline annotation.
  EXPECT_NE(dot.find("T=200"), std::string::npos);
}

TEST(DotExport, WcetsCanBeHidden) {
  const SystemModel sys = ides::testing::makeDiamondSystem();
  DotOptions opts;
  opts.showWcets = false;
  const std::string dot = toDot(sys, opts);
  EXPECT_EQ(dot.find("[10 -]"), std::string::npos);
  const std::string withWcets = toDot(sys);
  EXPECT_NE(withWcets.find("[10 -]"), std::string::npos);  // P1: node1 banned
}

TEST(DotExport, MappingColorsProcesses) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = ides::testing::makeDiamondSystem(&ids);
  MappingSolution mapping(sys);
  mapping.setNode(ids.p1, NodeId{0});
  mapping.setNode(ids.p2, NodeId{1});
  mapping.setNode(ids.p3, NodeId{0});
  mapping.setNode(ids.p4, NodeId{0});
  DotOptions opts;
  opts.mapping = &mapping;
  const std::string dot = toDot(sys, opts);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(DotExport, ApplicationFilter) {
  ides::testing::ScenarioIds ids;
  const SystemModel sys = ides::testing::makeIncrementalScenario(&ids);
  DotOptions opts;
  opts.application = ids.currentApp;
  const std::string dot = toDot(sys, opts);
  EXPECT_NE(dot.find("P1"), std::string::npos);
  EXPECT_EQ(dot.find("E0"), std::string::npos);  // existing app filtered out
}

TEST(DotExport, OffsetAnnotatedWhenPresent) {
  SystemModel sys(ides::testing::twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Existing);
  const GraphId g = sys.addGraph(a, 200, 100, 50);
  sys.addProcess(g, "P", ides::testing::wcets({10, 10}));
  sys.finalize();
  EXPECT_NE(toDot(sys).find("O=50"), std::string::npos);
}

}  // namespace
}  // namespace ides
