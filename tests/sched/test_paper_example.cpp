// Reproduction of the paper's worked example (slide 5): four processes on
// two nodes, four messages over a two-slot TDMA bus, messages riding in
// their sender's slot across successive rounds, slack visible between and
// after executions.
#include <gtest/gtest.h>

#include "sched/gantt.h"
#include "sched/list_scheduler.h"
#include "sched/slack.h"
#include "test_helpers.h"

namespace ides {
namespace {

class PaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<SystemModel>(
        ides::testing::makeDiamondSystem(&ids_));
    state_ = std::make_unique<PlatformState>(sys_->architecture(),
                                             sys_->hyperperiod());
    ScheduleRequest req;
    req.graphs = {ids_.graph};
    req.chooseNodes = true;
    out_ = scheduleGraphs(*sys_, req, *state_);
  }

  ides::testing::DiamondIds ids_;
  std::unique_ptr<SystemModel> sys_;
  std::unique_ptr<PlatformState> state_;
  ScheduleOutcome out_;
};

TEST_F(PaperExample, ScheduleIsValid) {
  ASSERT_TRUE(out_.feasible);
  EXPECT_EQ(out_.deadlineMisses, 0);
  EXPECT_EQ(out_.schedule.processEntryCount(), 4u);
}

TEST_F(PaperExample, MessagesRideSenderSlotsInSuccessiveRounds) {
  const TdmaBus& bus = sys_->architecture().bus();
  for (const ScheduledMessage& sm : out_.schedule.messages()) {
    const Message& msg = sys_->message(sm.mid);
    const NodeId srcNode = out_.mapping.nodeOf(msg.src);
    // The message is in its source node's slot...
    EXPECT_EQ(sm.slotIndex, bus.slotOfNode(srcNode));
    // ...and entirely inside that slot occurrence.
    EXPECT_GE(sm.start, bus.slotStart(sm.round, sm.slotIndex));
    EXPECT_LE(sm.end, bus.slotEnd(sm.round, sm.slotIndex));
  }
}

TEST_F(PaperExample, ReceiversStartAfterMessageArrival) {
  for (const ScheduledMessage& sm : out_.schedule.messages()) {
    const Message& msg = sys_->message(sm.mid);
    const auto& src = out_.schedule.processEntry(msg.src, sm.instance);
    const auto& dst = out_.schedule.processEntry(msg.dst, sm.instance);
    EXPECT_GE(sm.start, src.end);   // sent after the producer finished
    EXPECT_GE(dst.start, sm.end);   // consumed after arrival
  }
}

TEST_F(PaperExample, SlackRemainsAfterTheApplication) {
  const SlackInfo slack = extractSlack(*state_);
  // The example occupies the early part of the hyperperiod only; a large
  // contiguous tail of slack must remain on both processors.
  EXPECT_GT(slack.nodeFree[0].largest(), 100);
  EXPECT_GT(slack.nodeFree[1].largest(), 100);
  EXPECT_GT(slack.totalBusFreeTicks(), 150);
}

TEST_F(PaperExample, GanttShowsTheSlideFiveLayout) {
  Schedule merged;
  merged.merge(out_.schedule);
  const std::string gantt = renderGantt(*sys_, merged, {.width = 100});
  // Every process appears in the legend; the bus row carries transmissions.
  for (const char* name : {"P1", "P2", "P3", "P4"}) {
    EXPECT_NE(gantt.find(name), std::string::npos) << gantt;
  }
  EXPECT_NE(gantt.find('#'), std::string::npos) << gantt;
}

}  // namespace
}  // namespace ides
