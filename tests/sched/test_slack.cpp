#include "sched/slack.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::twoNodeArch;

TEST(Slack, EmptyPlatformIsAllSlack) {
  const Architecture arch = twoNodeArch();  // round 20
  PlatformState state(arch, 100);
  const SlackInfo slack = extractSlack(state);
  EXPECT_EQ(slack.horizon, 100);
  ASSERT_EQ(slack.nodeFree.size(), 2u);
  EXPECT_EQ(slack.nodeFree[0].totalLength(), 100);
  EXPECT_EQ(slack.nodeFree[1].totalLength(), 100);
  // 5 rounds x 2 slots, all free.
  EXPECT_EQ(slack.busChunks.size(), 10u);
  EXPECT_EQ(slack.totalBusFreeTicks(), 100);
  EXPECT_EQ(slack.totalNodeSlack(), 200);
}

TEST(Slack, NodeFreeReflectsOccupancy) {
  const Architecture arch = twoNodeArch();
  PlatformState state(arch, 100);
  state.occupyNode(NodeId{0}, {10, 30});
  state.occupyNode(NodeId{0}, {50, 60});
  const SlackInfo slack = extractSlack(state);
  ASSERT_EQ(slack.nodeFree[0].size(), 3u);
  EXPECT_EQ(slack.nodeFree[0].intervals()[0], (Interval{0, 10}));
  EXPECT_EQ(slack.nodeFree[0].intervals()[1], (Interval{30, 50}));
  EXPECT_EQ(slack.nodeFree[0].intervals()[2], (Interval{60, 100}));
}

TEST(Slack, BusChunksShrinkWithUse) {
  const Architecture arch = twoNodeArch();  // slots of 10 ticks
  PlatformState state(arch, 40);
  state.occupyBus(0, 0, 4);   // slot0 round0: 6 free starting at t=4
  state.occupyBus(1, 1, 10);  // slot1 round1: full
  const SlackInfo slack = extractSlack(state);
  ASSERT_EQ(slack.busChunks.size(), 3u);  // one occurrence fully used
  EXPECT_EQ(slack.busChunks[0].slotIndex, 0u);
  EXPECT_EQ(slack.busChunks[0].start, 4);
  EXPECT_EQ(slack.busChunks[0].freeTicks, 6);
  // Chunks are in time order.
  EXPECT_LT(slack.busChunks[0].start, slack.busChunks[1].start);
  EXPECT_LT(slack.busChunks[1].start, slack.busChunks[2].start);
}

TEST(Slack, WindowQueries) {
  const Architecture arch = twoNodeArch();
  PlatformState state(arch, 100);
  state.occupyNode(NodeId{0}, {0, 50});  // first half of node 0 busy
  const SlackInfo slack = extractSlack(state);
  EXPECT_EQ(slack.nodeSlackInWindow(0, 0, 50), 0);
  EXPECT_EQ(slack.nodeSlackInWindow(0, 50, 100), 50);
  EXPECT_EQ(slack.nodeSlackInWindow(0, 25, 75), 25);
  EXPECT_EQ(slack.nodeSlackInWindow(1, 0, 50), 50);
}

TEST(Slack, BusWindowCountsFreeTicksAcrossSlots) {
  const Architecture arch = twoNodeArch();  // round 20
  PlatformState state(arch, 40);
  const SlackInfo empty = extractSlack(state);
  EXPECT_EQ(empty.busSlackInWindow(0, 20), 20);
  EXPECT_EQ(empty.busSlackInWindow(0, 40), 40);
  state.occupyBus(0, 0, 10);
  state.occupyBus(1, 0, 5);
  const SlackInfo used = extractSlack(state);
  EXPECT_EQ(used.busSlackInWindow(0, 20), 5);
  EXPECT_EQ(used.busSlackInWindow(20, 40), 20);
  // Window straddling a partially-free slot counts the overlap only.
  EXPECT_EQ(used.busSlackInWindow(17, 20), 3);  // free [15,20) ∩ [17,20)
}

TEST(Slack, BytesConversion) {
  const Architecture arch = twoNodeArch(/*slotLength=*/10,
                                        /*bytesPerTick=*/2);
  PlatformState state(arch, 40);
  const SlackInfo slack = extractSlack(state);
  EXPECT_EQ(slack.busBytesPerTick, 2);
  EXPECT_EQ(slack.totalBusFreeTicks(), 40);
  EXPECT_EQ(slack.totalBusFreeBytes(), 80);
}

}  // namespace
}  // namespace ides
