#include "sched/schedule_io.h"

#include <gtest/gtest.h>

#include "sched/list_scheduler.h"
#include "test_helpers.h"

namespace ides {
namespace {

class ScheduleIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<SystemModel>(
        ides::testing::makeDiamondSystem(&ids_));
    PlatformState state(sys_->architecture(), sys_->hyperperiod());
    ScheduleRequest req;
    req.graphs = {ids_.graph};
    req.chooseNodes = true;
    out_ = scheduleGraphs(*sys_, req, state);
    ASSERT_TRUE(out_.feasible);
  }

  ides::testing::DiamondIds ids_;
  std::unique_ptr<SystemModel> sys_;
  ScheduleOutcome out_;
};

TEST_F(ScheduleIoTest, RoundTripsExactly) {
  const std::string text = scheduleToString(*sys_, out_.schedule);
  const Schedule loaded = scheduleFromString(text, *sys_);
  ASSERT_EQ(loaded.processEntryCount(), out_.schedule.processEntryCount());
  ASSERT_EQ(loaded.messageEntryCount(), out_.schedule.messageEntryCount());
  for (const ScheduledProcess& e : out_.schedule.processes()) {
    const ScheduledProcess& l = loaded.processEntry(e.pid, e.instance);
    EXPECT_EQ(l.node, e.node);
    EXPECT_EQ(l.start, e.start);
    EXPECT_EQ(l.end, e.end);
  }
  for (const ScheduledMessage& e : out_.schedule.messages()) {
    const ScheduledMessage& l = loaded.messageEntry(e.mid, e.instance);
    EXPECT_EQ(l.slotIndex, e.slotIndex);
    EXPECT_EQ(l.round, e.round);
    EXPECT_EQ(l.start, e.start);
    EXPECT_EQ(l.end, e.end);
  }
}

TEST_F(ScheduleIoTest, OutputIsHumanReadableCsv) {
  const std::string text = scheduleToString(*sys_, out_.schedule);
  EXPECT_NE(text.find("# ides schedule v1"), std::string::npos);
  EXPECT_NE(text.find("[processes]"), std::string::npos);
  EXPECT_NE(text.find("[messages]"), std::string::npos);
  EXPECT_NE(text.find("pid,name,instance,node,start,end"),
            std::string::npos);
  EXPECT_NE(text.find("P1"), std::string::npos);
}

TEST_F(ScheduleIoTest, EmptyScheduleRoundTrips) {
  const Schedule empty;
  const Schedule loaded =
      scheduleFromString(scheduleToString(*sys_, empty), *sys_);
  EXPECT_EQ(loaded.processEntryCount(), 0u);
  EXPECT_EQ(loaded.messageEntryCount(), 0u);
}

TEST_F(ScheduleIoTest, RejectsMalformedInput) {
  EXPECT_THROW(scheduleFromString("garbage,1,2\n", *sys_),
               std::invalid_argument);
  EXPECT_THROW(
      scheduleFromString("[processes]\nheader\n1,2,3\n", *sys_),
      std::invalid_argument);  // wrong arity
  EXPECT_THROW(
      scheduleFromString("[processes]\nheader\n999,X,0,0,0,10\n", *sys_),
      std::invalid_argument);  // unknown pid
  EXPECT_THROW(
      scheduleFromString("[processes]\nheader\n0,P1,0,7,0,10\n", *sys_),
      std::invalid_argument);  // unknown node
  EXPECT_THROW(
      scheduleFromString("[messages]\nheader\n0,0,9,0,0,4\n", *sys_),
      std::invalid_argument);  // unknown slot
  EXPECT_THROW(
      scheduleFromString("[processes]\nheader\n0,P1,0,0,abc,10\n", *sys_),
      std::invalid_argument);  // bad number
}

TEST_F(ScheduleIoTest, IgnoresCommentsAndBlankLines) {
  const std::string text = "# comment\n\n[processes]\nheader\n"
                           "0,P1,0,0,0,10\n\n# trailing comment\n";
  const Schedule loaded = scheduleFromString(text, *sys_);
  EXPECT_EQ(loaded.processEntryCount(), 1u);
  EXPECT_EQ(loaded.processEntry(ProcessId{0}, 0).end, 10);
}

}  // namespace
}  // namespace ides
