#include "sched/platform_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "test_helpers.h"
#include "util/rng.h"

namespace ides {
namespace {

using ides::testing::twoNodeArch;

PlatformState makeState(Time horizon = 200) {
  static const Architecture arch = twoNodeArch();  // round 20
  return PlatformState(arch, horizon);
}

TEST(PlatformState, RejectsBadHorizon) {
  const Architecture arch = twoNodeArch();
  EXPECT_THROW(PlatformState(arch, 0), std::invalid_argument);
  EXPECT_THROW(PlatformState(arch, 30), std::invalid_argument);  // not k*20
  EXPECT_NO_THROW(PlatformState(arch, 40));
}

TEST(PlatformState, EarliestFitOnEmptyNode) {
  PlatformState st = makeState();
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 50), 0);
  EXPECT_EQ(st.earliestFit(NodeId{0}, 13, 50), 13);
  EXPECT_EQ(st.earliestFit(NodeId{0}, -5, 50), 0);  // clamped
}

TEST(PlatformState, EarliestFitSkipsBusyAndFindsGaps) {
  PlatformState st = makeState();
  st.occupyNode(NodeId{0}, {10, 40});
  st.occupyNode(NodeId{0}, {60, 100});
  // Gap [0,10) fits 10 but not 11.
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 10), 0);
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 11), 40);
  // Gap [40,60) fits 20.
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 20), 40);
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 21), 100);
  // After constraint pushes past a gap start.
  EXPECT_EQ(st.earliestFit(NodeId{0}, 45, 10), 45);
  EXPECT_EQ(st.earliestFit(NodeId{0}, 55, 10), 100);
}

TEST(PlatformState, EarliestFitRespectsHorizon) {
  PlatformState st = makeState(100);
  st.occupyNode(NodeId{0}, {0, 95});
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 5), 95);
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 6), kNoTime);
}

TEST(PlatformState, EarliestFitIsPerNode) {
  PlatformState st = makeState();
  st.occupyNode(NodeId{0}, {0, 200});
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 10), kNoTime);
  EXPECT_EQ(st.earliestFit(NodeId{1}, 0, 10), 0);
}

TEST(PlatformState, OccupyNodeRejectsDoubleBookingAndOutOfRange) {
  PlatformState st = makeState();
  st.occupyNode(NodeId{0}, {10, 20});
  EXPECT_THROW(st.occupyNode(NodeId{0}, {15, 25}), std::logic_error);
  EXPECT_THROW(st.occupyNode(NodeId{0}, {-5, 5}), std::logic_error);
  EXPECT_THROW(st.occupyNode(NodeId{0}, {190, 210}), std::logic_error);
  EXPECT_THROW(st.occupyNode(NodeId{0}, {30, 30}), std::logic_error);
  // Adjacent is fine.
  EXPECT_NO_THROW(st.occupyNode(NodeId{0}, {20, 30}));
}

TEST(PlatformState, NodeFreeComplementsBusy) {
  PlatformState st = makeState(100);
  st.occupyNode(NodeId{0}, {10, 30});
  const IntervalSet free = st.nodeFree(NodeId{0});
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free.intervals()[0], (Interval{0, 10}));
  EXPECT_EQ(free.intervals()[1], (Interval{30, 100}));
}

TEST(PlatformState, FindBusSlotBasics) {
  // Round 20: slot0 = [0,10) owned by N0, slot1 = [10,20) owned by N1.
  PlatformState st = makeState(100);
  const auto p = st.findBusSlot(0, 0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->round, 0);
  EXPECT_EQ(p->start, 0);
  EXPECT_EQ(p->end, 4);

  // Ready mid-slot: must wait for the next occurrence of slot 0.
  const auto p2 = st.findBusSlot(0, 5, 4);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->round, 1);
  EXPECT_EQ(p2->start, 20);

  // Slot 1 starts at offset 10.
  const auto p3 = st.findBusSlot(1, 10, 4);
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->round, 0);
  EXPECT_EQ(p3->start, 10);
}

TEST(PlatformState, FindBusSlotPacksBackToBack) {
  PlatformState st = makeState(100);
  auto p1 = st.findBusSlot(0, 0, 4);
  st.occupyBus(0, p1->round, 4);
  const auto p2 = st.findBusSlot(0, 0, 4);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->round, 0);
  EXPECT_EQ(p2->start, 4);
  EXPECT_EQ(p2->end, 8);
}

TEST(PlatformState, FindBusSlotOverflowsToNextRound) {
  PlatformState st = makeState(100);
  st.occupyBus(0, 0, 8);  // 8 of 10 ticks used
  const auto p = st.findBusSlot(0, 0, 4);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->round, 1);
  EXPECT_EQ(p->start, 20);
}

TEST(PlatformState, FindBusSlotRespectsMinRound) {
  PlatformState st = makeState(100);
  const auto p = st.findBusSlot(0, 0, 4, /*minRound=*/3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->round, 3);
  EXPECT_EQ(p->start, 60);
}

TEST(PlatformState, FindBusSlotFailsBeyondHorizonOrOversized) {
  PlatformState st = makeState(40);  // 2 rounds
  st.occupyBus(0, 0, 10);
  st.occupyBus(0, 1, 10);
  EXPECT_FALSE(st.findBusSlot(0, 0, 4).has_value());
  // A transmission longer than the slot can never fit.
  PlatformState st2 = makeState(40);
  EXPECT_FALSE(st2.findBusSlot(0, 0, 11).has_value());
}

TEST(PlatformState, OccupyBusValidation) {
  PlatformState st = makeState(40);
  EXPECT_THROW(st.occupyBus(0, 2, 4), std::logic_error);   // round beyond H
  EXPECT_THROW(st.occupyBus(0, -1, 4), std::logic_error);
  st.occupyBus(0, 0, 8);
  EXPECT_THROW(st.occupyBus(0, 0, 3), std::logic_error);   // overflow
  EXPECT_NO_THROW(st.occupyBus(0, 0, 2));                  // exactly full
}

TEST(PlatformState, SlackTotals) {
  PlatformState st = makeState(40);  // 2 nodes x 40 ticks; 2 rounds
  EXPECT_EQ(st.totalNodeSlack(), 80);
  EXPECT_EQ(st.totalBusSlackTicks(), 40);  // 2 slots x 10 ticks x 2 rounds
  st.occupyNode(NodeId{0}, {0, 15});
  st.occupyBus(1, 0, 7);
  EXPECT_EQ(st.totalNodeSlack(), 65);
  EXPECT_EQ(st.totalBusSlackTicks(), 33);
  EXPECT_EQ(st.slotUsedTicks(1, 0), 7);
  EXPECT_EQ(st.slotFreeTicks(1, 0), 3);
}

TEST(PlatformState, CopyIsIndependent) {
  PlatformState a = makeState(40);
  a.occupyNode(NodeId{0}, {0, 10});
  PlatformState b = a;
  b.occupyNode(NodeId{0}, {10, 20});
  b.occupyBus(0, 0, 5);
  EXPECT_EQ(a.nodeBusy(NodeId{0}).totalLength(), 10);
  EXPECT_EQ(b.nodeBusy(NodeId{0}).totalLength(), 20);
  EXPECT_EQ(a.slotUsedTicks(0, 0), 0);
  EXPECT_EQ(b.slotUsedTicks(0, 0), 5);
}

TEST(PlatformStateJournal, RollbackRestoresNodeAndBusOccupancy) {
  PlatformState st = makeState();
  st.occupyNode(NodeId{0}, {0, 15});  // pre-journal floor
  st.setJournaling(true);

  const PlatformState::Mark m0 = st.mark();
  st.occupyNode(NodeId{0}, {15, 30});  // coalesces with [0,15)
  st.occupyNode(NodeId{1}, {40, 60});
  st.occupyBus(0, 2, 7);
  const PlatformState::Mark m1 = st.mark();
  st.occupyNode(NodeId{0}, {100, 120});
  st.occupyBus(0, 2, 3);  // same occurrence, packs behind the 7

  st.rollbackTo(m1);
  EXPECT_EQ(st.nodeBusy(NodeId{0}).intervals(),
            (std::vector<Interval>{{0, 30}}));
  EXPECT_EQ(st.slotUsedTicks(0, 2), 7);

  st.rollbackTo(m0);
  EXPECT_EQ(st.nodeBusy(NodeId{0}).intervals(),
            (std::vector<Interval>{{0, 15}}));
  EXPECT_EQ(st.nodeBusy(NodeId{1}).totalLength(), 0);
  EXPECT_EQ(st.slotUsedTicks(0, 2), 0);
}

TEST(PlatformStateJournal, RollbackReopensGapsForEarliestFit) {
  PlatformState st = makeState();
  st.setJournaling(true);
  const PlatformState::Mark m = st.mark();
  st.occupyNode(NodeId{0}, {0, 50});
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 10), 50);
  st.rollbackTo(m);
  EXPECT_EQ(st.earliestFit(NodeId{0}, 0, 10), 0);
}

TEST(PlatformStateJournal, RollbackGuards) {
  PlatformState st = makeState();
  EXPECT_THROW(st.rollbackTo(0), std::logic_error);  // journaling off
  st.setJournaling(true);
  st.occupyNode(NodeId{0}, {0, 10});
  EXPECT_THROW(st.rollbackTo(5), std::logic_error);  // ahead of journal
  EXPECT_NO_THROW(st.rollbackTo(1));                 // no-op at the tip
}

TEST(PlatformStateJournal, EnablingClearsHistory) {
  PlatformState st = makeState();
  st.setJournaling(true);
  st.occupyNode(NodeId{0}, {0, 10});
  EXPECT_EQ(st.mark(), 1u);
  st.setJournaling(true);  // re-enable: committed work becomes the floor
  EXPECT_EQ(st.mark(), 0u);
  st.rollbackTo(0);
  EXPECT_EQ(st.nodeBusy(NodeId{0}).totalLength(), 10);
}

// ---- first-free-round cursor ---------------------------------------------
// findBusSlot keeps a per-slot cursor past the fully-booked round prefix.
// These tests pin the invariant: placements are identical to a plain linear
// scan, across saturation, partial fills, and journal rollbacks.

/// Reference: what the pre-cursor linear scan would return.
std::optional<PlatformState::BusPlacement> linearFindBusSlot(
    const PlatformState& st, std::size_t slot, Time ready, Time txTicks,
    std::int64_t minRound = 0) {
  if (txTicks > st.bus().slot(slot).length) return std::nullopt;
  if (ready < 0) ready = 0;
  std::int64_t round =
      std::max(minRound, st.bus().firstRoundAtOrAfter(slot, ready));
  for (; round < st.roundCount(); ++round) {
    if (st.slotUsedTicks(slot, round) + txTicks >
        st.bus().slot(slot).length) {
      continue;
    }
    const Time start =
        st.bus().slotStart(round, slot) + st.slotUsedTicks(slot, round);
    return PlatformState::BusPlacement{round, start, start + txTicks};
  }
  return std::nullopt;
}

TEST(PlatformStateCursor, SkipsSaturatedPrefix) {
  PlatformState st = makeState(400);  // 20 rounds, slot length 10
  for (std::int64_t r = 0; r < 12; ++r) st.occupyBus(0, r, 10);
  const auto got = st.findBusSlot(0, 0, 4);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->round, 12);
  EXPECT_EQ(got->start, st.bus().slotStart(12, 0));
  // A partially-used round ahead of the cursor still serves smaller fits.
  st.occupyBus(0, 12, 7);
  EXPECT_EQ(st.findBusSlot(0, 0, 3)->round, 12);
  EXPECT_EQ(st.findBusSlot(0, 0, 4)->round, 13);
}

TEST(PlatformStateCursor, RollbackReopensRounds) {
  PlatformState st = makeState(400);
  st.setJournaling(true);
  for (std::int64_t r = 0; r < 5; ++r) st.occupyBus(0, r, 10);
  const PlatformState::Mark m = st.mark();
  for (std::int64_t r = 5; r < 10; ++r) st.occupyBus(0, r, 10);
  EXPECT_EQ(st.findBusSlot(0, 0, 1)->round, 10);
  st.rollbackTo(m);
  // Rounds 5..9 reopened; the cursor must not skip them.
  EXPECT_EQ(st.findBusSlot(0, 0, 1)->round, 5);
  EXPECT_EQ(st.findBusSlot(0, 0, 10)->round, 5);
}

TEST(PlatformStateCursor, MatchesLinearScanUnderRandomChurn) {
  PlatformState st = makeState(800);  // 40 rounds, 2 slots
  st.setJournaling(true);
  Rng rng(99);
  std::vector<PlatformState::Mark> marks;
  for (int step = 0; step < 400; ++step) {
    const std::size_t slot = rng.index(st.bus().slotCount());
    const Time ready = rng.uniformInt(0, st.horizon() - 1);
    const Time tx = rng.uniformInt(1, 10);
    const auto got = st.findBusSlot(slot, ready, tx);
    const auto want = linearFindBusSlot(st, slot, ready, tx);
    ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
    if (got.has_value()) {
      EXPECT_EQ(got->round, want->round) << "step " << step;
      EXPECT_EQ(got->start, want->start) << "step " << step;
    }
    // Churn: mostly occupy (sometimes through the found placement),
    // sometimes roll back to a random earlier mark.
    if (!marks.empty() && rng.chance(0.15)) {
      const std::size_t k = rng.index(marks.size());
      st.rollbackTo(marks[k]);
      marks.resize(k);
    } else if (got.has_value()) {
      marks.push_back(st.mark());
      st.occupyBus(slot, got->round, tx);
    }
  }
}

}  // namespace
}  // namespace ides
