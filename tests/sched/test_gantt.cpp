#include "sched/gantt.h"

#include <gtest/gtest.h>

#include "sched/list_scheduler.h"
#include "test_helpers.h"

namespace ides {
namespace {

TEST(Gantt, RendersNodesBusAndLegend) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = ides::testing::makeDiamondSystem(&ids);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  ScheduleRequest req;
  req.graphs = {ids.graph};
  req.chooseNodes = true;
  const ScheduleOutcome out = scheduleGraphs(sys, req, state);
  ASSERT_TRUE(out.feasible);

  const std::string text = renderGantt(sys, out.schedule);
  EXPECT_NE(text.find("N0 |"), std::string::npos);
  EXPECT_NE(text.find("N1 |"), std::string::npos);
  EXPECT_NE(text.find("bus"), std::string::npos);
  EXPECT_NE(text.find("legend:"), std::string::npos);
  EXPECT_NE(text.find("A=P1"), std::string::npos);
  // Bus transmissions appear as '#'.
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Gantt, EmptyScheduleIsAllSlack) {
  const SystemModel sys = ides::testing::makeChainSystem(2);
  const Schedule empty;
  const std::string text = renderGantt(sys, empty, {.width = 32});
  EXPECT_NE(text.find("................"), std::string::npos);
  // No transmissions below the header line (the header legend mentions '#').
  EXPECT_EQ(text.find('#', text.find('\n')), std::string::npos);
}

TEST(Gantt, HonorsExplicitHorizonAndWidth) {
  const SystemModel sys = ides::testing::makeChainSystem(2);
  Schedule sched;
  sched.addProcess({ProcessId{0}, 0, NodeId{0}, 0, 100});
  const std::string narrow =
      renderGantt(sys, sched, {.width = 20, .horizon = 200});
  const std::string wide =
      renderGantt(sys, sched, {.width = 80, .horizon = 200});
  EXPECT_LT(narrow.size(), wide.size());
  EXPECT_NE(narrow.find("0 .. 200"), std::string::npos);
}

}  // namespace
}  // namespace ides
