#include "sched/schedule.h"

#include <gtest/gtest.h>

namespace ides {
namespace {

TEST(Schedule, AddAndLookupProcessEntries) {
  Schedule s;
  s.addProcess({ProcessId{3}, 0, NodeId{1}, 10, 25});
  s.addProcess({ProcessId{3}, 1, NodeId{1}, 110, 125});
  EXPECT_TRUE(s.hasProcess(ProcessId{3}, 0));
  EXPECT_TRUE(s.hasProcess(ProcessId{3}, 1));
  EXPECT_FALSE(s.hasProcess(ProcessId{3}, 2));
  EXPECT_FALSE(s.hasProcess(ProcessId{4}, 0));
  EXPECT_EQ(s.processEntry(ProcessId{3}, 1).start, 110);
  EXPECT_EQ(s.processEntryCount(), 2u);
}

TEST(Schedule, AddAndLookupMessageEntries) {
  Schedule s;
  s.addMessage({MessageId{7}, 0, 2, 5, 104, 108});
  ASSERT_TRUE(s.hasMessage(MessageId{7}, 0));
  const ScheduledMessage& m = s.messageEntry(MessageId{7}, 0);
  EXPECT_EQ(m.slotIndex, 2u);
  EXPECT_EQ(m.round, 5);
  EXPECT_EQ(m.end, 108);
  EXPECT_EQ(s.messageEntryCount(), 1u);
}

TEST(Schedule, DuplicateEntriesThrow) {
  Schedule s;
  s.addProcess({ProcessId{1}, 0, NodeId{0}, 0, 10});
  EXPECT_THROW(s.addProcess({ProcessId{1}, 0, NodeId{1}, 20, 30}),
               std::logic_error);
  s.addMessage({MessageId{1}, 0, 0, 0, 0, 4});
  EXPECT_THROW(s.addMessage({MessageId{1}, 0, 0, 1, 20, 24}),
               std::logic_error);
}

TEST(Schedule, InstancesAreDistinctKeys) {
  Schedule s;
  s.addProcess({ProcessId{1}, 0, NodeId{0}, 0, 10});
  EXPECT_NO_THROW(s.addProcess({ProcessId{1}, 1, NodeId{0}, 100, 110}));
}

TEST(Schedule, MergeCombinesSchedules) {
  Schedule a, b;
  a.addProcess({ProcessId{1}, 0, NodeId{0}, 0, 10});
  b.addProcess({ProcessId{2}, 0, NodeId{1}, 5, 15});
  b.addMessage({MessageId{1}, 0, 0, 0, 10, 14});
  a.merge(b);
  EXPECT_EQ(a.processEntryCount(), 2u);
  EXPECT_EQ(a.messageEntryCount(), 1u);
  EXPECT_TRUE(a.hasProcess(ProcessId{2}, 0));
}

TEST(Schedule, MergeDetectsCollisions) {
  Schedule a, b;
  a.addProcess({ProcessId{1}, 0, NodeId{0}, 0, 10});
  b.addProcess({ProcessId{1}, 0, NodeId{0}, 0, 10});
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(Schedule, MakespanOverProcessesAndMessages) {
  Schedule s;
  EXPECT_EQ(s.makespan(), 0);
  s.addProcess({ProcessId{1}, 0, NodeId{0}, 0, 50});
  s.addMessage({MessageId{1}, 0, 0, 3, 62, 66});
  EXPECT_EQ(s.makespan(), 66);
}

}  // namespace
}  // namespace ides
