// Edge cases of the list scheduler around bus saturation, exact fits and
// hint clamping.
#include <gtest/gtest.h>

#include "sched/list_scheduler.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::twoNodeArch;
using ides::testing::wcets;

ScheduleOutcome scheduleAll(const SystemModel& sys, PlatformState& state) {
  ScheduleRequest req;
  for (const ProcessGraph& g : sys.graphs()) req.graphs.push_back(g.id);
  req.chooseNodes = true;
  return scheduleGraphs(sys, req, state);
}

TEST(SchedulerEdge, ExactProcessorFitSucceeds) {
  // Exactly fills the hyperperiod on the single node.
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  for (int i = 0; i < 4; ++i) {
    sys.addProcess(g, "P" + std::to_string(i), {25});
  }
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(state.totalNodeSlack(), 0);
}

TEST(SchedulerEdge, OneTickTooMuchFails) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  for (int i = 0; i < 3; ++i) {
    sys.addProcess(g, "P" + std::to_string(i), {33});
  }
  sys.addProcess(g, "P3", {2});  // 101 ticks of demand in 100
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  EXPECT_FALSE(out.placed);
}

TEST(SchedulerEdge, ExactSlotFitPacksMessagesToCapacity) {
  // Two messages of 5 bytes exactly fill one 10-tick slot occurrence.
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 200);
  const ProcessId s1 = sys.addProcess(g, "S1", wcets({5, kNoTime}));
  const ProcessId s2 = sys.addProcess(g, "S2", wcets({5, kNoTime}));
  const ProcessId d1 = sys.addProcess(g, "D1", wcets({kNoTime, 5}));
  const ProcessId d2 = sys.addProcess(g, "D2", wcets({kNoTime, 5}));
  sys.addMessage(g, s1, d1, 5);
  sys.addMessage(g, s2, d2, 5);
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  // Both messages ride the same slot occurrence back to back.
  const auto& m0 = out.schedule.messages()[0];
  const auto& m1 = out.schedule.messages()[1];
  if (m0.round == m1.round) {
    EXPECT_EQ(std::max(m0.end, m1.end) - std::min(m0.start, m1.start), 10);
  }
}

TEST(SchedulerEdge, BusSaturationPushesMessagesToLaterRounds) {
  // Saturate the sender slot in early rounds; the message must wait.
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 200);
  const ProcessId src = sys.addProcess(g, "S", wcets({5, kNoTime}));
  const ProcessId dst = sys.addProcess(g, "D", wcets({kNoTime, 5}));
  sys.addMessage(g, src, dst, 4);
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  for (std::int64_t r = 0; r < 5; ++r) state.occupyBus(0, r, 10);
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_GE(out.schedule.messages()[0].round, 5);
}

TEST(SchedulerEdge, TotallySaturatedBusFailsCleanly) {
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 200);
  const ProcessId src = sys.addProcess(g, "S", wcets({5, kNoTime}));
  const ProcessId dst = sys.addProcess(g, "D", wcets({kNoTime, 5}));
  sys.addMessage(g, src, dst, 4);
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  for (std::int64_t r = 0; r < state.roundCount(); ++r) {
    state.occupyBus(0, r, 10);
  }
  const ScheduleOutcome out = scheduleAll(sys, state);
  EXPECT_FALSE(out.placed);
}

TEST(SchedulerEdge, HintBeyondDeadlineMakesInstanceLateOrUnplaced) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100, 50);
  const ProcessId p = sys.addProcess(g, "P", {10});
  sys.finalize();
  MappingSolution mapping(sys);
  mapping.setNode(p, NodeId{0});
  mapping.setStartHint(p, 60);  // beyond deadline 50, inside period
  PlatformState state(sys.architecture(), sys.hyperperiod());
  ScheduleRequest req;
  req.graphs = {g};
  req.mapping = &mapping;
  const ScheduleOutcome out = scheduleGraphs(sys, req, state);
  EXPECT_TRUE(out.placed);
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(out.totalLateness, 20);  // ends at 70, deadline 50
}

TEST(SchedulerEdge, ChainAcrossNodesAlternatesSlots) {
  // S->M->D with S,D on node 0 and M on node 1: two bus hops in opposite
  // directions must use the two different slots.
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 400);
  const ProcessId s = sys.addProcess(g, "S", wcets({5, kNoTime}));
  const ProcessId m = sys.addProcess(g, "M", wcets({kNoTime, 5}));
  const ProcessId d = sys.addProcess(g, "D", wcets({5, kNoTime}));
  const MessageId m1 = sys.addMessage(g, s, m, 4);
  const MessageId m2 = sys.addMessage(g, m, d, 4);
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.messageEntry(m1, 0).slotIndex, 0u);
  EXPECT_EQ(out.schedule.messageEntry(m2, 0).slotIndex, 1u);
  EXPECT_LT(out.schedule.messageEntry(m1, 0).end,
            out.schedule.messageEntry(m2, 0).start);
}

TEST(SchedulerEdge, WideFanOutRespectsEveryArrival) {
  // One producer, eight consumers pinned to the other node: all eight
  // messages queue through the producer's slot over successive rounds.
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 400);
  const ProcessId src = sys.addProcess(g, "S", wcets({5, kNoTime}));
  std::vector<ProcessId> sinks;
  for (int i = 0; i < 8; ++i) {
    sinks.push_back(
        sys.addProcess(g, "D" + std::to_string(i), wcets({kNoTime, 10})));
    sys.addMessage(g, src, sinks.back(), 4);
  }
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  // 8 messages x 4 ticks in 10-tick slots: at least 4 rounds involved.
  std::int64_t maxRound = 0;
  for (const ScheduledMessage& sm : out.schedule.messages()) {
    maxRound = std::max(maxRound, sm.round);
  }
  EXPECT_GE(maxRound, 3);
}

TEST(SchedulerEdge, PriorityBreaksTiesDeterministically) {
  // Independent identical processes: order must follow process ids.
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100);
  for (int i = 0; i < 5; ++i) {
    sys.addProcess(g, "P" + std::to_string(i), {10});
  }
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out.schedule.processEntry(ProcessId{i}, 0).start, 10 * i);
  }
}

}  // namespace
}  // namespace ides
