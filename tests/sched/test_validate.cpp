#include "sched/validate.h"

#include <gtest/gtest.h>

#include "sched/list_scheduler.h"
#include "test_helpers.h"

namespace ides {
namespace {

using Kind = ValidationIssue::Kind;

bool hasIssue(const ValidationReport& report, Kind kind) {
  for (const ValidationIssue& issue : report.issues) {
    if (issue.kind == kind) return true;
  }
  return false;
}

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<SystemModel>(
        ides::testing::makeDiamondSystem(&ids_));
    PlatformState state(sys_->architecture(), sys_->hyperperiod());
    ScheduleRequest req;
    req.graphs = {ids_.graph};
    req.chooseNodes = true;
    out_ = scheduleGraphs(*sys_, req, state);
    ASSERT_TRUE(out_.feasible);
  }

  ValidationReport validate(const Schedule& s) {
    return validateSchedule(*sys_, s, {ids_.graph});
  }

  ides::testing::DiamondIds ids_;
  std::unique_ptr<SystemModel> sys_;
  ScheduleOutcome out_;
};

TEST_F(ValidateTest, AcceptsSchedulerOutput) {
  const ValidationReport report = validate(out_.schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "schedule valid");
}

TEST_F(ValidateTest, DetectsMissingEntry) {
  Schedule s;  // empty
  const ValidationReport report = validate(s);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(hasIssue(report, Kind::MissingEntry));
}

TEST_F(ValidateTest, DetectsNodeOverlap) {
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) {
    ScheduledProcess copy = e;
    // Slam everything to the same node-0 time range.
    copy.node = NodeId{0};
    copy.start = 0;
    copy.end = copy.start + (e.end - e.start);
    s.addProcess(copy);
  }
  const ValidationReport report = validate(s);
  EXPECT_TRUE(hasIssue(report, Kind::NodeOverlap));
}

TEST_F(ValidateTest, DetectsOutsideWindowAndWrongDuration) {
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) {
    ScheduledProcess copy = e;
    if (copy.pid == ids_.p4) {
      copy.start = 195;
      copy.end = 205;  // past the deadline/horizon
    }
    s.addProcess(copy);
  }
  for (const ScheduledMessage& m : out_.schedule.messages()) s.addMessage(m);
  const ValidationReport report = validate(s);
  EXPECT_TRUE(hasIssue(report, Kind::OutsideWindow));
  EXPECT_TRUE(hasIssue(report, Kind::BeyondHorizon));

  Schedule s2;
  for (const ScheduledProcess& e : out_.schedule.processes()) {
    ScheduledProcess copy = e;
    if (copy.pid == ids_.p1) copy.end = copy.start + 3;  // wcet is 10
    s2.addProcess(copy);
  }
  EXPECT_TRUE(hasIssue(validate(s2), Kind::WrongDuration));
}

TEST_F(ValidateTest, DetectsDisallowedNode) {
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) {
    ScheduledProcess copy = e;
    if (copy.pid == ids_.p1) copy.node = NodeId{1};  // P1 pinned to N0
    s.addProcess(copy);
  }
  EXPECT_TRUE(hasIssue(validate(s), Kind::DisallowedNode));
}

TEST_F(ValidateTest, DetectsMissingMessage) {
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) s.addProcess(e);
  // no messages at all, but P1->P2 crosses nodes
  EXPECT_TRUE(hasIssue(validate(s), Kind::MissingMessage));
}

TEST_F(ValidateTest, DetectsPrecedenceViolation) {
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) s.addProcess(e);
  for (const ScheduledMessage& m : out_.schedule.messages()) {
    ScheduledMessage copy = m;
    if (copy.mid == ids_.m1) {
      copy.round = 0;  // before P1 finishes
      copy.start = 0;
      copy.end = 4;
    }
    s.addMessage(copy);
  }
  EXPECT_TRUE(hasIssue(validate(s), Kind::PrecedenceViolated));
}

TEST_F(ValidateTest, DetectsWrongSlotAndSlotOverflow) {
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) s.addProcess(e);
  for (const ScheduledMessage& m : out_.schedule.messages()) {
    ScheduledMessage copy = m;
    if (copy.mid == ids_.m1) copy.slotIndex = 1 - copy.slotIndex;
    s.addMessage(copy);
  }
  EXPECT_TRUE(hasIssue(validate(s), Kind::WrongSlot));
}

TEST_F(ValidateTest, DetectsLocalMessageOnBus) {
  // P3 ends up on node 0 next to P1; force an m2 bus entry anyway.
  Schedule s;
  for (const ScheduledProcess& e : out_.schedule.processes()) s.addProcess(e);
  for (const ScheduledMessage& m : out_.schedule.messages()) s.addMessage(m);
  ASSERT_EQ(s.processEntry(ids_.p3, 0).node,
            s.processEntry(ids_.p1, 0).node);
  s.addMessage({ids_.m2, 0, 0, 3, 60, 64});
  EXPECT_TRUE(hasIssue(validate(s), Kind::LocalMessageOnBus));
}

TEST_F(ValidateTest, SummaryListsIssues) {
  Schedule s;
  const std::string text = validate(s).summary();
  EXPECT_NE(text.find("missing-entry"), std::string::npos);
  EXPECT_NE(text.find("issue(s)"), std::string::npos);
}

TEST(ValidateKindNames, AllDistinct) {
  EXPECT_STREQ(toString(Kind::MissingEntry), "missing-entry");
  EXPECT_STREQ(toString(Kind::SlotOverflow), "slot-overflow");
  EXPECT_STREQ(toString(Kind::PrecedenceViolated), "precedence-violated");
}

}  // namespace
}  // namespace ides
