#include "sched/list_scheduler.h"

#include <gtest/gtest.h>

#include "model/system_model.h"
#include "test_helpers.h"

namespace ides {
namespace {

using ides::testing::makeChainSystem;
using ides::testing::makeDiamondSystem;
using ides::testing::twoNodeArch;
using ides::testing::wcets;

ScheduleOutcome scheduleAll(const SystemModel& sys, PlatformState& state,
                            const MappingSolution* mapping = nullptr) {
  ScheduleRequest req;
  for (const ProcessGraph& g : sys.graphs()) req.graphs.push_back(g.id);
  req.mapping = mapping;
  req.chooseNodes = mapping == nullptr;
  return scheduleGraphs(sys, req, state);
}

TEST(ListScheduler, ChainRunsBackToBackOnOneNode) {
  const SystemModel sys = makeChainSystem(4, /*wcet=*/10);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  for (int i = 0; i < 4; ++i) {
    const auto& e = out.schedule.processEntry(ProcessId{i}, 0);
    EXPECT_EQ(e.start, 10 * i);
    EXPECT_EQ(e.end, 10 * (i + 1));
  }
  // Single-node chain: all messages are local, nothing on the bus.
  EXPECT_EQ(out.schedule.messageEntryCount(), 0u);
}

TEST(ListScheduler, DiamondHcpProducesExpectedSchedule) {
  // See test_helpers.h: P1,P4 pinned to N0; P2 to N1; P3 free.
  // Slots: N0 = [0,10) each round of 20, N1 = [10,20).
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);

  const auto& p1 = out.schedule.processEntry(ids.p1, 0);
  EXPECT_EQ(p1.node, NodeId{0});
  EXPECT_EQ(p1.start, 0);
  EXPECT_EQ(p1.end, 10);

  // m1 (P1->P2, 4 bytes) waits for N0's next slot occurrence at t=20.
  const auto& m1 = out.schedule.messageEntry(ids.m1, 0);
  EXPECT_EQ(m1.round, 1);
  EXPECT_EQ(m1.start, 20);
  EXPECT_EQ(m1.end, 24);

  const auto& p2 = out.schedule.processEntry(ids.p2, 0);
  EXPECT_EQ(p2.node, NodeId{1});
  EXPECT_EQ(p2.start, 24);
  EXPECT_EQ(p2.end, 44);

  // HCP maps P3 onto N0 (finish 25 beats N1's 59 after the bus hop).
  const auto& p3 = out.schedule.processEntry(ids.p3, 0);
  EXPECT_EQ(p3.node, NodeId{0});
  EXPECT_EQ(p3.start, 10);
  EXPECT_EQ(p3.end, 25);
  // m2 (P1->P3) became node-local: not on the bus.
  EXPECT_FALSE(out.schedule.hasMessage(ids.m2, 0));

  // m3 (P2->P4) leaves N1's slot [50,54); m4 is local.
  const auto& m3 = out.schedule.messageEntry(ids.m3, 0);
  EXPECT_EQ(m3.start, 50);
  EXPECT_EQ(m3.end, 54);
  EXPECT_FALSE(out.schedule.hasMessage(ids.m4, 0));

  const auto& p4 = out.schedule.processEntry(ids.p4, 0);
  EXPECT_EQ(p4.node, NodeId{0});
  EXPECT_EQ(p4.start, 54);
  EXPECT_EQ(p4.end, 64);
}

TEST(ListScheduler, MappingModeHonorsNodeAssignment) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  MappingSolution mapping(sys);
  mapping.setNode(ids.p1, NodeId{0});
  mapping.setNode(ids.p2, NodeId{1});
  mapping.setNode(ids.p3, NodeId{1});  // force the slower choice
  mapping.setNode(ids.p4, NodeId{0});
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state, &mapping);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.processEntry(ids.p3, 0).node, NodeId{1});
  // Now m2 crosses nodes and must be on the bus.
  EXPECT_TRUE(out.schedule.hasMessage(ids.m2, 0));
}

TEST(ListScheduler, MappingModeRejectsDisallowedNode) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  MappingSolution mapping(sys);
  mapping.setNode(ids.p1, NodeId{1});  // P1 is pinned to node 0
  mapping.setNode(ids.p2, NodeId{1});
  mapping.setNode(ids.p3, NodeId{0});
  mapping.setNode(ids.p4, NodeId{0});
  PlatformState state(sys.architecture(), sys.hyperperiod());
  EXPECT_THROW(scheduleAll(sys, state, &mapping), std::invalid_argument);
}

TEST(ListScheduler, MappingModeRequiresMapping) {
  const SystemModel sys = makeChainSystem(2);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  ScheduleRequest req;
  req.graphs = {sys.graphs()[0].id};
  req.chooseNodes = false;
  EXPECT_THROW(scheduleGraphs(sys, req, state), std::invalid_argument);
}

TEST(ListScheduler, StartHintPushesProcessIntoLaterSlack) {
  const SystemModel sys = makeChainSystem(1, /*wcet=*/10, /*period=*/200);
  MappingSolution mapping(sys);
  mapping.setNode(ProcessId{0}, NodeId{0});
  mapping.setStartHint(ProcessId{0}, 73);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state, &mapping);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.processEntry(ProcessId{0}, 0).start, 73);
}

TEST(ListScheduler, MessageHintDelaysTransmission) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  MappingSolution mapping(sys);
  mapping.setNode(ids.p1, NodeId{0});
  mapping.setNode(ids.p2, NodeId{1});
  mapping.setNode(ids.p3, NodeId{0});
  mapping.setNode(ids.p4, NodeId{0});
  mapping.setMessageHint(ids.m1, 95);  // skip rounds 1..4
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state, &mapping);
  ASSERT_TRUE(out.feasible);
  const auto& m1 = out.schedule.messageEntry(ids.m1, 0);
  EXPECT_GE(m1.start, 95);
  EXPECT_EQ(m1.round, 5);  // N0's slot at t=100
}

TEST(ListScheduler, InsertsIntoFrozenGaps) {
  const SystemModel sys = makeChainSystem(2, /*wcet=*/10, /*period=*/200);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  // Frozen load leaves gaps [15,25) and [40,...).
  state.occupyNode(NodeId{0}, {0, 15});
  state.occupyNode(NodeId{0}, {25, 40});
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.processEntry(ProcessId{0}, 0).start, 15);
  EXPECT_EQ(out.schedule.processEntry(ProcessId{1}, 0).start, 40);
}

TEST(ListScheduler, DeadlineMissIsReportedWithLateness) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, /*period=*/40, /*deadline=*/20);
  sys.addProcess(g, "P1", {15});
  sys.addProcess(g, "P2", {15});
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  EXPECT_TRUE(out.placed);
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(out.deadlineMisses, 1);
  EXPECT_EQ(out.totalLateness, 10);  // second process ends at 30, D=20
}

TEST(ListScheduler, UnplaceableReturnsNotPlaced) {
  const SystemModel sys = makeChainSystem(3, /*wcet=*/80, /*period=*/200);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  // Only 160 free ticks left for 240 ticks of work.
  state.occupyNode(NodeId{0}, {0, 40});
  const ScheduleOutcome out = scheduleAll(sys, state);
  EXPECT_FALSE(out.placed);
  EXPECT_FALSE(out.feasible);
}

TEST(ListScheduler, PeriodicInstancesAreReplicatedPerPeriod) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId fast = sys.addGraph(a, /*period=*/100);
  sys.addProcess(fast, "F", {10});
  const GraphId slow = sys.addGraph(a, /*period=*/200);
  sys.addProcess(slow, "S", {10});
  sys.finalize();
  ASSERT_EQ(sys.hyperperiod(), 200);
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  const auto& f0 = out.schedule.processEntry(ProcessId{0}, 0);
  const auto& f1 = out.schedule.processEntry(ProcessId{0}, 1);
  EXPECT_GE(f0.start, 0);
  EXPECT_LT(f0.end, 100);
  EXPECT_GE(f1.start, 100);  // released at its period boundary
  EXPECT_LE(f1.end, 200);
  EXPECT_TRUE(out.schedule.hasProcess(ProcessId{1}, 0));
  EXPECT_FALSE(out.schedule.hasProcess(ProcessId{1}, 1));
}

TEST(ListScheduler, OffsetDelaysReleaseOfEveryInstance) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  // Period 100, offset 30, deadline 70: instances release at 30 and 130.
  const GraphId g = sys.addGraph(a, 100, 70, 30);
  sys.addProcess(g, "P", {10});
  const GraphId other = sys.addGraph(a, 200);  // stretch H to 200
  sys.addProcess(other, "Q", {10});
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_GE(out.schedule.processEntry(ProcessId{0}, 0).start, 30);
  EXPECT_LE(out.schedule.processEntry(ProcessId{0}, 0).end, 100);
  EXPECT_GE(out.schedule.processEntry(ProcessId{0}, 1).start, 130);
  EXPECT_LE(out.schedule.processEntry(ProcessId{0}, 1).end, 200);
}

TEST(ListScheduler, OffsetGraphMissesAreMeasuredFromOffsetDeadline) {
  SystemModel sys(makeUniformArchitecture(1, 10, 1));
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 100, /*deadline=*/20, /*offset=*/50);
  sys.addProcess(g, "P", {15});
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  // Block [50, 60): the process starts at 60, ends 75 > deadline 70.
  state.occupyNode(NodeId{0}, {50, 60});
  const ScheduleOutcome out = scheduleAll(sys, state);
  EXPECT_TRUE(out.placed);
  EXPECT_FALSE(out.feasible);
  EXPECT_EQ(out.totalLateness, 5);
}

TEST(ListScheduler, DeterministicAcrossRuns) {
  ides::testing::DiamondIds ids;
  const SystemModel sys = makeDiamondSystem(&ids);
  PlatformState s1(sys.architecture(), sys.hyperperiod());
  PlatformState s2(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome a = scheduleAll(sys, s1);
  const ScheduleOutcome b = scheduleAll(sys, s2);
  ASSERT_EQ(a.schedule.processEntryCount(), b.schedule.processEntryCount());
  for (const ScheduledProcess& sp : a.schedule.processes()) {
    const ScheduledProcess& other =
        b.schedule.processEntry(sp.pid, sp.instance);
    EXPECT_EQ(sp.node, other.node);
    EXPECT_EQ(sp.start, other.start);
    EXPECT_EQ(sp.end, other.end);
  }
}

TEST(ListScheduler, HcpPrefersFasterNode) {
  // One process, much faster on node 1.
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 200);
  const ProcessId p = sys.addProcess(g, "P", wcets({50, 10}));
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.processEntry(p, 0).node, NodeId{1});
  EXPECT_EQ(out.mapping.nodeOf(p), NodeId{1});
}

TEST(ListScheduler, HcpAvoidsCongestedNode) {
  // Equal WCETs, but node 0 is frozen solid early: HCP must go to node 1.
  SystemModel sys(twoNodeArch());
  const ApplicationId a = sys.addApplication("a", AppKind::Current);
  const GraphId g = sys.addGraph(a, 200);
  const ProcessId p = sys.addProcess(g, "P", wcets({20, 20}));
  sys.finalize();
  PlatformState state(sys.architecture(), sys.hyperperiod());
  state.occupyNode(NodeId{0}, {0, 150});
  const ScheduleOutcome out = scheduleAll(sys, state);
  ASSERT_TRUE(out.feasible);
  EXPECT_EQ(out.schedule.processEntry(p, 0).node, NodeId{1});
  EXPECT_EQ(out.schedule.processEntry(p, 0).start, 0);
}

}  // namespace
}  // namespace ides
