// Parallel multi-start SA: quality and wall-clock versus a single chain.
//
// Three modes on the same instance and IM start, K = 4 chains:
//   single    — one SA chain of N iterations (the paper's reference)
//   eq_budget — K chains of N/K iterations: equal total evaluations.
//               Multi-start diversification under a fixed budget; ties or
//               wins on small/medium instances, can lose to the slow
//               cooling of one long chain on the largest ones.
//   eq_time   — K chains of N iterations each on P threads: with P >= K
//               cores this costs the wall-clock of `single` but is
//               guaranteed no worse (chain 0 replays the single chain and
//               selection keeps the best feasible incumbent).
// The ensemble is deterministic for any thread count, so the speedup
// column (same eq_budget ensemble on 1 thread vs P threads) is a pure
// wall-clock measurement; it needs P >= 4 physical cores to show.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "core/parallel_annealing.h"
#include "util/stats.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  const int restarts = 4;
  const int threads =
      std::max(4u, std::thread::hardware_concurrency());
  printHeader("Parallel SA — best-of-K quality and thread-pool speedup",
              "single chain of N vs K chains at equal budget / equal time",
              scale);
  std::printf("restarts K=%d, threads P=%d (hardware: %u)\n\n", restarts,
              threads, std::thread::hardware_concurrency());

  CsvTable table({"current_processes", "single_C", "eq_budget_C", "eq_time_C",
                  "eq_time_wins", "single_seconds", "eq_budget_1t_seconds",
                  "eq_budget_Pt_seconds", "eq_time_Pt_seconds", "speedup"});

  for (const std::size_t size : scale.sizes) {
    StatAccumulator singleC, budgetC, timeC;
    StatAccumulator tSingle, tBudget1, tBudgetP, tTimeP;
    int wins = 0;
    for (int s = 0; s < scale.seeds; ++s) {
      const Suite suite =
          buildSuite(paperConfig(size), 3000 + static_cast<std::uint64_t>(s));
      DesignerOptions opts = designerOptions(scale, 1);
      IncrementalDesigner designer(suite.system, suite.profile, opts);
      const MappingSolution im =
          designer.run(Strategy::AdHoc).mapping;  // shared IM start

      auto t0 = std::chrono::steady_clock::now();
      const SaResult one =
          runSimulatedAnnealing(designer.evaluator(), im, opts.sa);
      tSingle.add(seconds_since(t0));
      singleC.add(one.eval.cost);

      ParallelSaOptions par;
      par.base = opts.sa;
      par.restarts = restarts;
      par.perChainIterations = std::max(1, opts.sa.iterations / restarts);
      par.threads = 1;
      const ParallelSaResult seq =
          runParallelAnnealing(designer.evaluator(), im, par);
      tBudget1.add(seq.seconds);
      par.threads = threads;
      const ParallelSaResult pool =
          runParallelAnnealing(designer.evaluator(), im, par);
      tBudgetP.add(pool.seconds);
      budgetC.add(pool.eval.cost);

      par.perChainIterations = 0;  // full N per chain
      const ParallelSaResult wide =
          runParallelAnnealing(designer.evaluator(), im, par);
      tTimeP.add(wide.seconds);
      timeC.add(wide.eval.cost);
      if (wide.eval.cost <= one.eval.cost + 1e-9) ++wins;
    }
    const double speedup =
        tBudgetP.mean() > 0.0 ? tBudget1.mean() / tBudgetP.mean() : 0.0;
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(singleC.mean(), 2),
                  CsvTable::num(budgetC.mean(), 2),
                  CsvTable::num(timeC.mean(), 2),
                  CsvTable::num(static_cast<long long>(wins)),
                  CsvTable::num(tSingle.mean(), 3),
                  CsvTable::num(tBudget1.mean(), 3),
                  CsvTable::num(tBudgetP.mean(), 3),
                  CsvTable::num(tTimeP.mean(), 3),
                  CsvTable::num(speedup, 2)});
    std::printf(
        "  [n=%zu] C: single=%.2f eq_budget=%.2f eq_time=%.2f "
        "(eq_time wins %d/%d)  wall: single=%.3fs ensemble 1t=%.3fs "
        "%dt=%.3fs (%.2fx)\n",
        size, singleC.mean(), budgetC.mean(), timeC.mean(), wins,
        scale.seeds, tSingle.mean(), tBudget1.mean(), threads,
        tBudgetP.mean(), speedup);
  }

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\neq_time is the recommended production mode: with P >= K cores it\n"
      "matches the single chain's wall-clock and is never worse on cost\n"
      "(chain 0 replays the single chain; best feasible incumbent wins).\n");
  return 0;
}
