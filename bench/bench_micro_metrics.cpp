// Micro-benchmarks of the design metrics (ablation A4 in DESIGN.md):
// C1 best-fit packing and C2 window scans, at realistic slack-fragment
// counts.
#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/initial_mapping.h"
#include "core/metrics.h"
#include "tgen/benchmark_suite.h"
#include "tgen/profile_presets.h"

namespace {

using namespace ides;

SlackInfo realisticSlack() {
  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = 160;
  cfg.futureAppCount = 0;
  static Suite suite = buildSuite(cfg, 2);
  static FrozenBase frozen = freezeExistingApplications(suite.system);
  static PlatformState state = [] {
    PlatformState s = frozen.state;
    initialMapping(suite.system, s);
    return s;
  }();
  return extractSlack(state);
}

void BM_ComputeAllMetrics(benchmark::State& state) {
  const SlackInfo slack = realisticSlack();
  const FutureProfile profile = paperFutureProfile(4000, 5520, 450);
  for (auto _ : state) {
    DesignMetrics m = computeMetrics(slack, profile);
    benchmark::DoNotOptimize(m.c1p);
  }
}
BENCHMARK(BM_ComputeAllMetrics);

void BM_BestFitPacking(benchmark::State& state) {
  const std::int64_t containerCount = state.range(0);
  std::vector<std::int64_t> containers;
  containers.reserve(static_cast<std::size_t>(containerCount));
  for (std::int64_t i = 0; i < containerCount; ++i) {
    containers.push_back(40 + (i * 37) % 200);
  }
  std::int64_t total = 0;
  for (auto c : containers) total += c;
  const auto items = largestFutureDemand(paperWcetDistribution(), total);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bestFitUnpacked(items, containers));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(items.size()));
}
BENCHMARK(BM_BestFitPacking)->Arg(64)->Arg(256)->Arg(1024);

void BM_DeterministicStream(benchmark::State& state) {
  const DiscreteDistribution d = paperWcetDistribution();
  for (auto _ : state) {
    auto stream = d.deterministicStream(
        static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(stream.data());
  }
}
BENCHMARK(BM_DeterministicStream)->Arg(100)->Arg(1000);

void BM_ObjectiveValue(benchmark::State& state) {
  DesignMetrics m;
  m.c1p = 12.5;
  m.c1m = 3.5;
  m.c2p = 2500;
  m.c2mBytes = 300;
  const FutureProfile profile = paperFutureProfile(4000, 5520, 450);
  const MetricWeights w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(objectiveValue(m, profile, w));
  }
}
BENCHMARK(BM_ObjectiveValue);

}  // namespace

BENCHMARK_MAIN();
