// Speculative parallel move evaluation inside one SA chain: wall-clock of
// the identical chain run sequentially vs. with 2 and 4 evaluation workers.
//
// The interesting regime is the low-acceptance phase (cold temperatures,
// where SA spends most of a long run): consecutive proposals perturb the
// same current solution, so a batch of K moves can be evaluated in
// parallel and replayed through the Metropolis decisions. The bench pins
// the chain into that phase with a cold schedule, measures the median
// wall-clock over repeats, and asserts the speculative results bit-equal
// the sequential chain (solution, cost, acceptance count) — speed is the
// only thing allowed to change.
//
// Expect ~min(workers, 1/acceptance-rate)x minus sync overhead on idle
// cores; on a loaded or single-core machine the speedup degrades towards
// 1x (the engine never degrades correctness). hardware_concurrency is
// printed so cross-machine numbers read honestly.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "core/initial_mapping.h"
#include "core/simulated_annealing.h"

namespace {

using namespace ides;

double medianMs(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

struct Timed {
  SaResult result;
  double medianMs = 0.0;
};

Timed timeChain(const SolutionEvaluator& evaluator,
                const MappingSolution& initial, const SaOptions& options,
                int repeats) {
  Timed timed;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    timed.result = runSimulatedAnnealing(evaluator, initial, options);
    samples.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  timed.medianMs = medianMs(samples);
  return timed;
}

}  // namespace

int main() {
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  const int iterations = scale.name == "smoke" ? 500
                         : scale.name == "full" ? 4000
                                                : 1500;
  const int repeats = scale.name == "smoke" ? 1 : 3;

  printHeader(
      "Speculative SA — parallel move evaluation inside one chain",
      "wall-clock of the identical chain: sequential vs 2 / 4 eval workers",
      scale);
  std::printf(
      "iterations per chain: %d (cold schedule: the low-acceptance phase)\n"
      "hardware concurrency: %u\n\n",
      iterations, std::thread::hardware_concurrency());

  CsvTable table({"current_processes", "seq_ms", "w2_ms", "w4_ms",
                  "speedup_w2", "speedup_w4", "accept_rate",
                  "evaluated_accept_rate", "zero_delta_skips",
                  "discarded_evals_w4", "mismatches"});
  BenchJson json("speculative_sa", scale.name);

  for (const std::size_t size : scale.sizes) {
    const Suite suite = buildSuite(paperConfig(size), 4000);
    const FrozenBase frozen = freezeExistingApplications(suite.system);
    if (!frozen.feasible) {
      std::printf("  [n=%zu] existing base infeasible, skipped\n", size);
      continue;
    }
    const SolutionEvaluator evaluator(suite.system, frozen.state,
                                      suite.profile, MetricWeights{});
    PlatformState state = frozen.state;
    const ScheduleOutcome im = initialMapping(suite.system, state);
    if (!im.feasible) {
      std::printf("  [n=%zu] no initial mapping, skipped\n", size);
      continue;
    }

    // The low-acceptance phase a long anneal ends in, pinned for the whole
    // run with a cold schedule — and the paper's default move mix. Hint
    // moves often land in the same gap, leaving the schedule exactly
    // unchanged; those zero-delta moves are always accepted and used to
    // floor the raw acceptance rate near 0.5 however cold the chain got
    // (which is why this bench once pinned a remap-heavy mix). The
    // gap-fingerprint filter now replays them without evaluating and keeps
    // them out of the speculation window, so the rate the threshold sees is
    // the evaluated acceptance rate — the floor is gone and the default mix
    // speculates; the accept_rate / evaluated_accept_rate columns show the
    // gap.
    SaOptions options;
    options.seed = 4000 + size;
    options.iterations = iterations;
    options.initialTempFactor = 1e-6;
    options.finalTemp = 1e-6;

    const Timed seq = timeChain(evaluator, im.mapping, options, repeats);

    options.speculation.workers = 2;
    const Timed w2 = timeChain(evaluator, im.mapping, options, repeats);
    options.speculation.workers = 4;
    const Timed w4 = timeChain(evaluator, im.mapping, options, repeats);

    std::size_t mismatches = 0;
    for (const Timed* t : {&w2, &w4}) {
      if (!(t->result.solution == seq.result.solution) ||
          t->result.eval.cost != seq.result.eval.cost ||
          t->result.accepted != seq.result.accepted ||
          t->result.evaluations != seq.result.evaluations ||
          t->result.proposals != seq.result.proposals ||
          t->result.zeroDeltaSkips != seq.result.zeroDeltaSkips) {
        ++mismatches;
      }
    }

    const double acceptRate =
        static_cast<double>(seq.result.accepted) /
        static_cast<double>(std::max<std::size_t>(1, seq.result.evaluations));
    // The acceptance floor the speculation threshold actually sees: the
    // zero-delta auto-accepts are filtered out of both sides, so this is
    // the rate among moves that needed a real evaluation.
    const double evaluatedAcceptRate =
        static_cast<double>(seq.result.accepted - seq.result.zeroDeltaSkips) /
        static_cast<double>(std::max<std::size_t>(
            1, seq.result.evaluations - seq.result.zeroDeltaSkips));
    const double speedup2 = w2.medianMs > 0.0 ? seq.medianMs / w2.medianMs
                                              : 0.0;
    const double speedup4 = w4.medianMs > 0.0 ? seq.medianMs / w4.medianMs
                                              : 0.0;
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(seq.medianMs, 1),
                  CsvTable::num(w2.medianMs, 1),
                  CsvTable::num(w4.medianMs, 1),
                  CsvTable::num(speedup2, 2), CsvTable::num(speedup4, 2),
                  CsvTable::num(acceptRate, 3),
                  CsvTable::num(evaluatedAcceptRate, 3),
                  CsvTable::num(
                      static_cast<long long>(seq.result.zeroDeltaSkips)),
                  CsvTable::num(
                      static_cast<long long>(w4.result.discardedEvaluations)),
                  CsvTable::num(static_cast<long long>(mismatches))});
    json.beginRecord()
        .field("instance", static_cast<long long>(size))
        .field("hardware_concurrency",
               static_cast<long long>(std::thread::hardware_concurrency()))
        .field("seq_median_ms", seq.medianMs)
        .field("w2_median_ms", w2.medianMs)
        .field("w4_median_ms", w4.medianMs)
        .field("speedup_w2", speedup2)
        .field("speedup_w4", speedup4)
        .field("proposals", static_cast<long long>(seq.result.proposals))
        .field("evaluations", static_cast<long long>(seq.result.evaluations))
        .field("accepted", static_cast<long long>(seq.result.accepted))
        .field("zero_delta_skips",
               static_cast<long long>(seq.result.zeroDeltaSkips))
        .field("accept_rate", acceptRate)
        .field("evaluated_accept_rate", evaluatedAcceptRate)
        .field("mismatches", static_cast<long long>(mismatches));
    std::printf(
        "  [n=%zu] seq=%.1fms w2=%.1fms w4=%.1fms -> %.2fx / %.2fx "
        "(accept %.3f, evaluated %.3f, %zu zero-delta skips, "
        "%zu speculations discarded, %zu mismatches)\n",
        size, seq.medianMs, w2.medianMs, w4.medianMs, speedup2, speedup4,
        acceptRate, evaluatedAcceptRate, seq.result.zeroDeltaSkips,
        w4.result.discardedEvaluations, mismatches);
  }

  std::printf("\n");
  printTableAndCsv(table);
  json.write();
  std::printf(
      "\nmismatches must be 0: the speculative chain is bit-identical to\n"
      "the sequential chain (also enforced by core.SpeculativeSa tests).\n");
  return 0;
}
