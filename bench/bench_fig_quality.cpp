// Figure F1 (paper slide 15): average percentage deviation of the AH and MH
// objective C from the near-optimal SA reference, versus the number of
// processes in the current application (existing base: 400 processes).
//
// Expected shape (paper): AH far above MH at every size where the current
// application actually stresses the system; MH within a few percent of SA.
//
// The sweep itself (sizes × seeds × {AH, MH, SA}) runs through the sharded
// BatchRunner (IDES_BENCH_SHARDS, default all cores); per-strategy results
// are bit-identical to the old per-designer loop and to any shard count.
#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Figure F1 — quality of the mapping strategies",
              "Avg % deviation of AH and MH cost C from near-optimal (SA)",
              scale);

  const InstanceSuite suite = qualitySweep(scale);
  const BatchReport report = runAndPublish(suite, "fig_quality", scale);
  const BatchIndex index(report);  // O(1) per-(group, seed, strategy) lookup

  CsvTable table({"current_processes", "dev_AH_pct", "dev_MH_pct",
                  "C_AH", "C_MH", "C_SA"});
  std::vector<double> xs, ahSeries, mhSeries;

  for (const std::size_t size : scale.sizes) {
    std::string group = "n";
    group += std::to_string(size);
    StatAccumulator devAh, devMh, cAh, cMh, cSa;
    for (int s = 0; s < scale.seeds; ++s) {
      const InstanceResult* ah = index.find(group, s, "AH");
      const InstanceResult* mh = index.find(group, s, "MH");
      const InstanceResult* sa = index.find(group, s, "SA");
      if (ah == nullptr || mh == nullptr || sa == nullptr) continue;
      const double cahv = ah->outcome.report.objective;
      const double cmhv = mh->outcome.report.objective;
      const double csav = sa->outcome.report.objective;
      devAh.add(deviationPercent(cahv, csav));
      devMh.add(deviationPercent(cmhv, csav));
      cAh.add(cahv);
      cMh.add(cmhv);
      cSa.add(csav);
      std::printf("  [n=%zu seed=%d] C: AH=%.2f MH=%.2f SA=%.2f\n", size, s,
                  cahv, cmhv, csav);
    }
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(devAh.mean()), CsvTable::num(devMh.mean()),
                  CsvTable::num(cAh.mean()), CsvTable::num(cMh.mean()),
                  CsvTable::num(cSa.mean())});
    xs.push_back(static_cast<double>(size));
    ahSeries.push_back(devAh.mean());
    mhSeries.push_back(devMh.mean());
  }

  std::printf("\n");
  printTableAndCsv(table);

  AsciiChart chart("Avg % deviation from near-optimal (SA = 0 by definition)",
                   "processes in current application", "% deviation");
  chart.setXAxis(xs);
  chart.addSeries("AH", ahSeries);
  chart.addSeries("MH", mhSeries);
  chart.render(std::cout);

  std::printf(
      "\nPaper shape check: AH should sit far above MH wherever the current\n"
      "application loads the system; MH should stay within a few %% of SA.\n");
  return 0;
}
