// Figure F1 (paper slide 15): average percentage deviation of the AH and MH
// objective C from the near-optimal SA reference, versus the number of
// processes in the current application (existing base: 400 processes).
//
// Expected shape (paper): AH far above MH at every size where the current
// application actually stresses the system; MH within a few percent of SA.
#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Figure F1 — quality of the mapping strategies",
              "Avg % deviation of AH and MH cost C from near-optimal (SA)",
              scale);

  CsvTable table({"current_processes", "dev_AH_pct", "dev_MH_pct",
                  "C_AH", "C_MH", "C_SA"});
  std::vector<double> xs, ahSeries, mhSeries;

  for (const std::size_t size : scale.sizes) {
    StatAccumulator devAh, devMh, cAh, cMh, cSa;
    for (int s = 0; s < scale.seeds; ++s) {
      const Suite suite =
          buildSuite(paperConfig(size), 1000 + static_cast<std::uint64_t>(s));
      IncrementalDesigner designer(
          suite.system, suite.profile,
          designerOptions(scale, static_cast<std::uint64_t>(s) + 1));
      const DesignResult ah = designer.run(Strategy::AdHoc);
      const DesignResult mh = designer.run(Strategy::MappingHeuristic);
      const DesignResult sa = designer.run(Strategy::SimulatedAnnealing);
      devAh.add(deviationPercent(ah.objective, sa.objective));
      devMh.add(deviationPercent(mh.objective, sa.objective));
      cAh.add(ah.objective);
      cMh.add(mh.objective);
      cSa.add(sa.objective);
      std::printf("  [n=%zu seed=%d] C: AH=%.2f MH=%.2f SA=%.2f\n", size, s,
                  ah.objective, mh.objective, sa.objective);
    }
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(devAh.mean()), CsvTable::num(devMh.mean()),
                  CsvTable::num(cAh.mean()), CsvTable::num(cMh.mean()),
                  CsvTable::num(cSa.mean())});
    xs.push_back(static_cast<double>(size));
    ahSeries.push_back(devAh.mean());
    mhSeries.push_back(devMh.mean());
  }

  std::printf("\n");
  printTableAndCsv(table);

  AsciiChart chart("Avg % deviation from near-optimal (SA = 0 by definition)",
                   "processes in current application", "% deviation");
  chart.setXAxis(xs);
  chart.addSeries("AH", ahSeries);
  chart.addSeries("MH", mhSeries);
  chart.render(std::cout);

  std::printf(
      "\nPaper shape check: AH should sit far above MH wherever the current\n"
      "application loads the system; MH should stay within a few %% of SA.\n");
  return 0;
}
