// Ablation A2: sensitivity of the design to the objective weights.
//
// DESIGN.md fixes w1P = w1m = 1 and w2P = w2m = 2 (the paper gives the
// objective's form but not the values). This ablation re-runs MH under
// different weight ratios and reports both the resulting metrics and the
// future-fit rate, showing that (a) emphasizing C2 is what protects the
// periodic slack, and (b) the conclusion "MH supports incremental design"
// is robust across reasonable weightings.
#include "bench_common.h"

#include "core/future_fit.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Ablation A2 — objective weight sensitivity",
              "MH results under different w2/w1 ratios (current app: 240 "
              "processes)", scale);

  struct WeightCase {
    const char* name;
    MetricWeights weights;
  };
  const std::vector<WeightCase> cases = {
      {"C1-only (w2=0)", {1.0, 1.0, 0.0, 0.0}},
      {"balanced (w2=1)", {1.0, 1.0, 1.0, 1.0}},
      {"default (w2=2)", {1.0, 1.0, 2.0, 2.0}},
      {"C2-heavy (w2=8)", {1.0, 1.0, 8.0, 8.0}},
  };

  CsvTable table({"weights", "C1P_pct", "C2P_ticks", "future_fit_pct"});

  const std::size_t size = 240;
  for (const WeightCase& wc : cases) {
    StatAccumulator c1p, c2p;
    int fits = 0, samples = 0;
    for (int s = 0; s < scale.seeds; ++s) {
      const Suite suite =
          buildSuite(paperConfig(size, scale.futureAppsPerInstance),
                     5000 + static_cast<std::uint64_t>(s));
      DesignerOptions opts = designerOptions(scale);
      opts.weights = wc.weights;
      IncrementalDesigner designer(suite.system, suite.profile, opts);
      const DesignResult mh = designer.run(Strategy::MappingHeuristic);
      c1p.add(mh.metrics.c1p);
      c2p.add(static_cast<double>(mh.metrics.c2p));
      const PlatformState after = designer.stateWith(mh);
      for (ApplicationId app :
           suite.system.applicationsOfKind(AppKind::Future)) {
        fits += tryMapFutureApplication(suite.system, app, after).fits;
        ++samples;
      }
    }
    const double fitPct = 100.0 * fits / samples;
    table.addRow({wc.name, CsvTable::num(c1p.mean()),
                  CsvTable::num(c2p.mean(), 0), CsvTable::num(fitPct, 1)});
    std::printf("  %-18s C1P=%5.2f%%  C2P=%7.0f  future-fit=%5.1f%%\n",
                wc.name, c1p.mean(), c2p.mean(), fitPct);
  }

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\nShape check: dropping the C2 term (w2=0) should collapse C2P and\n"
      "with it the future-fit rate; any w2 >= 1 should protect both.\n");
  return 0;
}
