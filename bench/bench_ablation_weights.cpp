// Ablation A2: sensitivity of the design to the objective weights.
//
// DESIGN.md fixes w1P = w1m = 1 and w2P = w2m = 2 (the paper gives the
// objective's form but not the values). This ablation re-runs MH under
// different weight ratios and reports both the resulting metrics and the
// future-fit rate, showing that (a) emphasizing C2 is what protects the
// periodic slack, and (b) the conclusion "MH supports incremental design"
// is robust across reasonable weightings.
//
// The weight cases × seeds grid runs through the sharded BatchRunner
// (core/batch_suites.h weightsSweep), future-fit counts via the probe.
#include "bench_common.h"

#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Ablation A2 — objective weight sensitivity",
              "MH results under different w2/w1 ratios (current app: 240 "
              "processes)", scale);

  const InstanceSuite suite = weightsSweep(scale);
  const BatchReport report = runAndPublish(suite, "ablation_weights", scale);
  const BatchIndex index(report);  // O(1) per-(group, seed) lookup

  // Case names in suite order (the canonical grouping).
  std::vector<std::string> caseNames;
  for (const BatchInstance& instance : suite.instances()) {
    if (caseNames.empty() || caseNames.back() != instance.group) {
      caseNames.push_back(instance.group);
    }
  }

  CsvTable table({"weights", "C1P_pct", "C2P_ticks", "future_fit_pct"});

  for (const std::string& name : caseNames) {
    StatAccumulator c1p, c2p;
    double fits = 0.0, samples = 0.0;
    for (int s = 0; s < scale.seeds; ++s) {
      const InstanceResult* mh = index.find(name, s, "MH");
      if (mh == nullptr) continue;
      c1p.add(mh->outcome.report.metrics.c1p);
      c2p.add(static_cast<double>(mh->outcome.report.metrics.c2p));
      fits += extraValue(*mh, "future_fit");
      samples += extraValue(*mh, "future_samples");
    }
    const double fitPct = samples > 0.0 ? 100.0 * fits / samples : 0.0;
    table.addRow({name, CsvTable::num(c1p.mean()),
                  CsvTable::num(c2p.mean(), 0), CsvTable::num(fitPct, 1)});
    std::printf("  %-18s C1P=%5.2f%%  C2P=%7.0f  future-fit=%5.1f%%\n",
                name.c_str(), c1p.mean(), c2p.mean(), fitPct);
  }

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\nShape check: dropping the C2 term (w2=0) should collapse C2P and\n"
      "with it the future-fit rate; any w2 >= 1 should protect both.\n");
  return 0;
}
