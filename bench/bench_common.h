// Shared infrastructure for the figure benches.
//
// Every figure bench sweeps the same axis as the paper (number of processes
// in the current application, on a base of 400 existing processes) and
// prints a numeric table, a CSV block, and an ASCII rendition of the
// figure. The IDES_BENCH_SCALE environment variable selects the effort:
//   smoke   — 1 seed, short SA, coarse axis (CI-friendly, ~tens of seconds)
//   default — 3 seeds, medium SA (a few minutes per figure)
//   full    — 5 seeds, long SA (paper-style patience)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental_designer.h"
#include "tgen/benchmark_suite.h"
#include "util/ascii_chart.h"
#include "util/csv.h"

namespace ides::bench {

struct BenchScale {
  std::string name = "default";
  int seeds = 3;
  int saIterations = 12000;
  std::vector<std::size_t> sizes{40, 80, 160, 240, 320};
  std::size_t futureAppsPerInstance = 5;
};

inline BenchScale benchScale() {
  BenchScale s;
  const char* env = std::getenv("IDES_BENCH_SCALE");
  const std::string v = env == nullptr ? "default" : env;
  if (v == "smoke") {
    s = {"smoke", 1, 4000, {40, 160, 320}, 3};
  } else if (v == "full") {
    s = {"full", 5, 30000, {40, 80, 160, 240, 320}, 10};
  }
  return s;
}

/// The paper-scale experiment instance (slides 15-17): 10 nodes, 400
/// processes of existing applications, current application of `current`
/// processes. tneed is pinned to 12000 ticks per Tmin window — the "most
/// demanding future application" — which puts the transition where naive
/// mapping starts starving the periodic slack inside the sweep range (see
/// DESIGN.md section 3 and EXPERIMENTS.md).
inline SuiteConfig paperConfig(std::size_t current,
                               std::size_t futureApps = 0) {
  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = current;
  cfg.futureAppCount = futureApps;
  cfg.futureProcesses = 80;
  cfg.tneedOverride = 12000;
  return cfg;
}

inline DesignerOptions designerOptions(const BenchScale& scale,
                                       std::uint64_t saSeed = 1) {
  DesignerOptions opts;
  opts.sa.iterations = scale.saIterations;
  opts.sa.seed = saSeed;
  return opts;
}

/// Percent deviation from the reference cost, clamped at 0 and guarded
/// against a near-zero reference.
inline double deviationPercent(double cost, double reference) {
  const double ref = reference < 1.0 ? 1.0 : reference;
  const double dev = (cost - ref) / ref * 100.0;
  return dev < 0.0 ? 0.0 : dev;
}

inline void printHeader(const char* figure, const char* question,
                        const BenchScale& scale) {
  std::printf("=== %s ===\n%s\n", figure, question);
  std::printf(
      "scale=%s (seeds per point: %d, SA iterations: %d)  "
      "[set IDES_BENCH_SCALE=smoke|default|full]\n\n",
      scale.name.c_str(), scale.seeds, scale.saIterations);
}

inline void printTableAndCsv(const CsvTable& table) {
  table.writePretty(std::cout);
  std::printf("\nCSV:\n");
  table.writeCsv(std::cout);
}

/// Machine-readable bench results: BENCH_<name>.json, one flat record per
/// instance, written to IDES_BENCH_JSON_DIR (default: the working
/// directory). The files are what tracks the perf trajectory across PRs —
/// deterministic content, no timestamps, so two runs diff cleanly.
class BenchJson {
 public:
  explicit BenchJson(std::string name, std::string scale)
      : name_(std::move(name)), scale_(std::move(scale)) {}

  BenchJson& beginRecord() {
    records_.emplace_back();
    return *this;
  }
  BenchJson& field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    records_.back().emplace_back(key, buf);
    return *this;
  }
  BenchJson& field(const char* key, long long value) {
    records_.back().emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchJson& field(const char* key, const std::string& value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    records_.back().emplace_back(key, quoted);
    return *this;
  }

  /// Writes BENCH_<name>.json; reports the path (or the failure) on stdout.
  void write() const {
    const char* dir = std::getenv("IDES_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::printf("(could not write %s)\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"scale\": \"" << scale_
        << "\",\n  \"results\": [";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << (r == 0 ? "" : ",") << "\n    {";
      for (std::size_t f = 0; f < records_[r].size(); ++f) {
        out << (f == 0 ? "" : ", ") << '"' << records_[r][f].first
            << "\": " << records_[r][f].second;
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("machine-readable results: %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::string scale_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace ides::bench
