// Shared infrastructure for the figure benches.
//
// Every figure bench sweeps the same axis as the paper (number of processes
// in the current application, on a base of 400 existing processes) and
// prints a numeric table, a CSV block, and an ASCII rendition of the
// figure. The IDES_BENCH_SCALE environment variable selects the effort:
//   smoke   — 1 seed, short SA, coarse axis (CI-friendly, ~tens of seconds)
//   default — 3 seeds, medium SA (a few minutes per figure)
//   full    — 5 seeds, long SA (paper-style patience)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "core/incremental_designer.h"
#include "obs/telemetry.h"
#include "store/sweep_store.h"
#include "tgen/benchmark_suite.h"
#include "util/ascii_chart.h"
#include "util/csv.h"
#include "util/json_reader.h"
#include "util/provenance.h"

namespace ides::bench {

/// The scale knob and the paper-scale instance definitions moved into the
/// library (core/batch_suites.h) when the figure drivers were ported onto
/// the BatchRunner; these aliases keep the remaining hand-rolled benches
/// (ablation A1, the modification extension, the micro benches) unchanged.
using BenchScale = SweepScale;

inline BenchScale benchScale() { return sweepScale(); }

inline SuiteConfig paperConfig(std::size_t current,
                               std::size_t futureApps = 0) {
  return paperSuiteConfig(current, futureApps);
}

inline DesignerOptions designerOptions(const BenchScale& scale,
                                       std::uint64_t saSeed = 1) {
  return sweepDesignerOptions(scale, saSeed);
}

/// Shards for the BatchRunner-backed drivers: IDES_BENCH_SHARDS, default 0
/// (= all cores). Aggregated results are bit-identical for every value.
inline int benchShards() {
  const char* env = std::getenv("IDES_BENCH_SHARDS");
  return env == nullptr || *env == '\0' ? 0 : std::atoi(env);
}

/// Percent deviation from the reference cost, clamped at 0 and guarded
/// against a near-zero reference.
inline double deviationPercent(double cost, double reference) {
  const double ref = reference < 1.0 ? 1.0 : reference;
  const double dev = (cost - ref) / ref * 100.0;
  return dev < 0.0 ? 0.0 : dev;
}

inline void printHeader(const char* figure, const char* question,
                        const BenchScale& scale) {
  std::printf("=== %s ===\n%s\n", figure, question);
  std::printf(
      "scale=%s (seeds per point: %d, SA iterations: %d)  "
      "[set IDES_BENCH_SCALE=smoke|default|full]\n\n",
      scale.name.c_str(), scale.seeds, scale.saIterations);
}

inline void printTableAndCsv(const CsvTable& table) {
  table.writePretty(std::cout);
  std::printf("\nCSV:\n");
  table.writeCsv(std::cout);
}

/// Writes a pre-rendered BENCH_<name>.json payload (e.g. from
/// batchReportJson) via the library's shared publishing helper; reports
/// the path (or the failure) on stdout.
inline void writeBenchJsonString(const std::string& name,
                                 const std::string& payload) {
  const std::string path = benchJsonPath(name);
  if (writeBenchJsonFile(name, payload)) {
    std::printf("machine-readable results: %s\n", path.c_str());
  } else {
    std::printf("(could not write %s)\n", path.c_str());
  }
}

/// Convenience for the BatchRunner-backed drivers: run the sweep with the
/// env-selected shard count, echo per-instance completions, and write the
/// canonical JSON (timing included — the deterministic prefix of each
/// record is still byte-stable; the determinism tests compare with timing
/// off).
///
/// Sweep-store opt-in: when IDES_SWEEP_STORE names a directory, completed
/// instances persist there and already-stored ones are reused, so
/// regenerating a figure after a code-irrelevant change (or re-rendering
/// another axis of the same sweep) is near-instant. Delete the store — or
/// bump kSweepFingerprintEpoch in a result-changing PR — to force fresh
/// runs.
inline BatchReport runAndPublish(const InstanceSuite& suite,
                                 const std::string& benchName,
                                 const BenchScale& scale) {
  BatchOptions options;
  options.shards = benchShards();
  options.onInstanceDone = [](const InstanceResult& r) {
    if (r.cached) {
      std::printf("  [%s] from store\n", r.id.c_str());
    } else if (r.outcome.hasReport) {
      std::printf("  [%s] C=%.2f (%.3fs)\n", r.id.c_str(),
                  r.outcome.report.objective, r.outcome.report.seconds);
    } else {
      std::printf("  [%s] done\n", r.id.c_str());
    }
  };

  std::optional<SweepStore> store;
  std::optional<SweepStoreCache> cache;
  const char* storeDir = std::getenv("IDES_SWEEP_STORE");
  if (storeDir != nullptr && *storeDir != '\0') {
    store.emplace(storeDir);
    cache.emplace(*store, suite.name(), /*reuse=*/true);
    options.cache = &*cache;
  }

  const BatchReport report = runBatch(suite, options);
  if (cache.has_value()) {
    std::printf("sweep store %s: %zu reused, %zu newly stored\n", storeDir,
                cache->hits(), cache->stored());
  }
  BatchJsonOptions json;
  json.scale = scale.name;
  writeBenchJsonString(benchName, batchReportJson(benchName, report, json));
  return report;
}

inline double extraValue(const InstanceResult& r, const std::string& key,
                         double fallback = 0.0) {
  for (const auto& [k, v] : r.outcome.extras.fields) {
    if (k == key) return v;
  }
  return fallback;
}

/// Machine-readable bench results: BENCH_<name>.json, one flat record per
/// instance, written to IDES_BENCH_JSON_DIR (default: the working
/// directory). The files are what tracks the perf trajectory across PRs —
/// the result records are deterministic, no timestamps. (The "telemetry"
/// header is the one wall-clock-bearing block; diff "results", not the
/// whole file.)
class BenchJson {
 public:
  explicit BenchJson(std::string name, std::string scale)
      : name_(std::move(name)), scale_(std::move(scale)) {}

  BenchJson& beginRecord() {
    records_.emplace_back();
    return *this;
  }
  BenchJson& field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    records_.back().emplace_back(key, buf);
    return *this;
  }
  BenchJson& field(const char* key, long long value) {
    records_.back().emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchJson& field(const char* key, const std::string& value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    records_.back().emplace_back(key, quoted);
    return *this;
  }

  /// Writes BENCH_<name>.json; reports the path (or the failure) on stdout.
  void write() const {
    const char* dir = std::getenv("IDES_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::printf("(could not write %s)\n", path.c_str());
      return;
    }
    const Provenance& prov = buildProvenance();
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"scale\": \"" << scale_
        << "\",\n  \"git_sha\": " << jsonQuote(prov.gitSha)
        << ",\n  \"hostname\": " << jsonQuote(prov.hostname)
        << ",\n  \"hardware_concurrency\": " << prov.hardwareConcurrency
        << ",\n  \"compiler\": " << jsonQuote(prov.compiler)
        // Telemetry snapshot of the whole bench process so far (empty
        // object when IDES_TELEMETRY=off). Counters here are observability
        // only — the deterministic result records never read them.
        << ",\n  \"telemetry\": " << telemetry().jsonSnapshot()
        << ",\n  \"results\": [";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out << (r == 0 ? "" : ",") << "\n    {";
      for (std::size_t f = 0; f < records_[r].size(); ++f) {
        out << (f == 0 ? "" : ", ") << '"' << records_[r][f].first
            << "\": " << records_[r][f].second;
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::printf("machine-readable results: %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::string scale_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace ides::bench
