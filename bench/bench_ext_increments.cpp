// Extension experiment E-INC: platform lifetime under successive
// increments.
//
// The paper's one-step experiment (figure F3) asks whether ONE future
// application still fits. This extension plays the whole process: a queue
// of candidate applications is implemented version after version, each
// increment mapped with the policy under test and then frozen. The
// platform's "lifetime" is how many increments it absorbs. Future-aware
// mapping (MH) should keep the platform alive for more versions than
// naive mapping (AH).
//
// Each (seed, policy) lifetime simulation is one custom-job instance of
// the sharded BatchRunner suite (core/batch_suites.h incrementsSweep).
#include "bench_common.h"

#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Extension E-INC — platform lifetime under successive "
              "increments",
              "How many queued increments (16 processes each) are absorbed "
              "under AH vs MH?", scale);

  const InstanceSuite suite = incrementsSweep(scale);
  const BatchReport report = runAndPublish(suite, "ext_increments", scale);
  const BatchIndex index(report);  // O(1) per-(group, seed) lookup

  CsvTable table({"policy", "avg_accepted", "min", "max", "queue"});
  StatAccumulator ahAcc, mhAcc;
  double queueSize = 0.0;

  for (int s = 0; s < scale.seeds; ++s) {
    const InstanceResult* ah = index.find("AH", s);
    const InstanceResult* mh = index.find("MH", s);
    if (ah == nullptr || mh == nullptr) continue;
    const double ahAccepted = extraValue(*ah, "accepted");
    const double mhAccepted = extraValue(*mh, "accepted");
    queueSize = extraValue(*ah, "queue");
    ahAcc.add(ahAccepted);
    mhAcc.add(mhAccepted);
    std::printf("  [seed=%d] absorbed: AH %.0f/%.0f  MH %.0f/%.0f\n", s,
                ahAccepted, queueSize, mhAccepted, queueSize);
  }

  table.addRow({"AH", CsvTable::num(ahAcc.mean(), 2),
                CsvTable::num(ahAcc.min(), 0), CsvTable::num(ahAcc.max(), 0),
                CsvTable::num(static_cast<long long>(queueSize))});
  table.addRow({"MH", CsvTable::num(mhAcc.mean(), 2),
                CsvTable::num(mhAcc.min(), 0), CsvTable::num(mhAcc.max(), 0),
                CsvTable::num(static_cast<long long>(queueSize))});

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\nShape check: both policies saturate the small platform at a similar\n"
      "number of increments; per-seed winners vary. The greedy per-version\n"
      "MH protects against the *profile's* hypothetical demand, which only\n"
      "sometimes coincides with the next concrete increment in the queue —\n"
      "an honest neutral result that sharpens F3's positive one: the\n"
      "future-aware advantage shows when the future is characterized well\n"
      "(F3's profile-matched apps at paper scale), not unconditionally.\n");
  return 0;
}
