// Extension experiment E-INC: platform lifetime under successive
// increments.
//
// The paper's one-step experiment (figure F3) asks whether ONE future
// application still fits. This extension plays the whole process: a queue
// of candidate applications is implemented version after version, each
// increment mapped with the policy under test and then frozen. The
// platform's "lifetime" is how many increments it absorbs. Future-aware
// mapping (MH) should keep the platform alive for more versions than
// naive mapping (AH).
#include "bench_common.h"

#include "core/multi_increment.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Extension E-INC — platform lifetime under successive "
              "increments",
              "How many queued increments (16 processes each) are absorbed "
              "under AH vs MH?", scale);

  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.basePeriod = 6000;
  cfg.tmin = 3000;
  cfg.existingProcesses = 40;
  cfg.currentProcesses = 16;
  cfg.futureAppCount = 8;  // the queue of version N+1, N+2, ...
  cfg.futureProcesses = 16;
  cfg.futureGraphSize = 16;
  cfg.tneedOverride = 2 * 16 * 69;

  CsvTable table({"policy", "avg_accepted", "min", "max", "queue"});
  StatAccumulator ahAcc, mhAcc;

  for (int s = 0; s < scale.seeds; ++s) {
    const Suite suite = buildSuite(cfg, 7000 + static_cast<std::uint64_t>(s));
    std::vector<ApplicationId> queue =
        suite.system.applicationsOfKind(AppKind::Current);
    const auto futures = suite.system.applicationsOfKind(AppKind::Future);
    queue.insert(queue.end(), futures.begin(), futures.end());

    MultiIncrementOptions ahOpts;
    ahOpts.strategy = Strategy::AdHoc;
    MultiIncrementOptions mhOpts;
    mhOpts.strategy = Strategy::MappingHeuristic;
    const MultiIncrementResult ah =
        runIncrementSequence(suite.system, suite.profile, queue, ahOpts);
    const MultiIncrementResult mh =
        runIncrementSequence(suite.system, suite.profile, queue, mhOpts);
    ahAcc.add(static_cast<double>(ah.accepted));
    mhAcc.add(static_cast<double>(mh.accepted));
    std::printf("  [seed=%d] absorbed: AH %zu/%zu  MH %zu/%zu\n", s,
                ah.accepted, queue.size(), mh.accepted, queue.size());
  }

  const auto queueSize = static_cast<long long>(1 + cfg.futureAppCount);
  table.addRow({"AH", CsvTable::num(ahAcc.mean(), 2),
                CsvTable::num(ahAcc.min(), 0), CsvTable::num(ahAcc.max(), 0),
                CsvTable::num(queueSize)});
  table.addRow({"MH", CsvTable::num(mhAcc.mean(), 2),
                CsvTable::num(mhAcc.min(), 0), CsvTable::num(mhAcc.max(), 0),
                CsvTable::num(queueSize)});

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\nShape check: both policies saturate the small platform at a similar\n"
      "number of increments; per-seed winners vary. The greedy per-version\n"
      "MH protects against the *profile's* hypothetical demand, which only\n"
      "sometimes coincides with the next concrete increment in the queue —\n"
      "an honest neutral result that sharpens F3's positive one: the\n"
      "future-aware advantage shows when the future is characterized well\n"
      "(F3's profile-matched apps at paper scale), not unconditionally.\n");
  return 0;
}
