// Figure F3 (paper slide 17): percentage of future applications that can
// still be mapped on the system after the current application has been
// implemented with AH vs MH (existing base: 400 processes; future
// applications of 80 processes drawn from the profile's histograms).
//
// Expected shape (paper): MH keeps the success rate high across the sweep;
// AH's rate collapses as the current application grows.
#include "bench_common.h"

#include "core/future_fit.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  BenchScale scale = benchScale();
  // The paper's third figure sweeps 40..240; 240 (where naive mapping
  // starts to destroy extensibility) is always included.
  std::vector<std::size_t> sizes;
  for (std::size_t n : scale.sizes) {
    if (n < 240) sizes.push_back(n);
  }
  sizes.push_back(240);

  printHeader("Figure F3 — support for incremental design",
              "% of future applications (80 processes) mappable after AH vs "
              "MH", scale);

  CsvTable table({"current_processes", "fit_AH_pct", "fit_MH_pct",
                  "samples"});
  std::vector<double> xs, ahSeries, mhSeries;

  for (const std::size_t size : sizes) {
    int ahFits = 0, mhFits = 0, samples = 0;
    for (int s = 0; s < scale.seeds; ++s) {
      const Suite suite =
          buildSuite(paperConfig(size, scale.futureAppsPerInstance),
                     3000 + static_cast<std::uint64_t>(s));
      IncrementalDesigner designer(
          suite.system, suite.profile,
          designerOptions(scale, static_cast<std::uint64_t>(s) + 1));
      const DesignResult ah = designer.run(Strategy::AdHoc);
      const DesignResult mh = designer.run(Strategy::MappingHeuristic);
      const PlatformState afterAh = designer.stateWith(ah);
      const PlatformState afterMh = designer.stateWith(mh);
      for (ApplicationId app :
           suite.system.applicationsOfKind(AppKind::Future)) {
        ahFits +=
            tryMapFutureApplication(suite.system, app, afterAh).fits ? 1 : 0;
        mhFits +=
            tryMapFutureApplication(suite.system, app, afterMh).fits ? 1 : 0;
        ++samples;
      }
    }
    const double ahPct = 100.0 * ahFits / samples;
    const double mhPct = 100.0 * mhFits / samples;
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(ahPct, 1), CsvTable::num(mhPct, 1),
                  CsvTable::num(static_cast<long long>(samples))});
    xs.push_back(static_cast<double>(size));
    ahSeries.push_back(ahPct);
    mhSeries.push_back(mhPct);
    std::printf("  [n=%zu] future apps mapped: AH %d/%d  MH %d/%d\n", size,
                ahFits, samples, mhFits, samples);
  }

  std::printf("\n");
  printTableAndCsv(table);

  AsciiChart chart("% of future applications mapped",
                   "processes in current application", "% mapped");
  chart.setXAxis(xs);
  chart.addSeries("MH", mhSeries);
  chart.addSeries("AH", ahSeries);
  chart.render(std::cout);

  std::printf(
      "\nPaper shape check: MH stays high across the sweep; AH falls off as\n"
      "the current application grows and naive mapping eats the slack the\n"
      "future applications would need.\n");
  return 0;
}
