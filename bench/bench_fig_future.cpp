// Figure F3 (paper slide 17): percentage of future applications that can
// still be mapped on the system after the current application has been
// implemented with AH vs MH (existing base: 400 processes; future
// applications of 80 processes drawn from the profile's histograms).
//
// Expected shape (paper): MH keeps the success rate high across the sweep;
// AH's rate collapses as the current application grows.
//
// The sweep runs through the sharded BatchRunner; the per-instance
// future-fit counts come from the suite's probe (extras future_fit /
// future_samples), so the whole figure is shard-invariant.
#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Figure F3 — support for incremental design",
              "% of future applications (80 processes) mappable after AH vs "
              "MH", scale);

  const InstanceSuite suite = futureSweep(scale);
  const BatchReport report = runAndPublish(suite, "fig_future", scale);
  const BatchIndex index(report);  // O(1) per-(group, seed, strategy) lookup

  // Recover the sweep's size axis from the suite (sizes capped at 240).
  std::vector<std::size_t> sizes;
  for (std::size_t n : scale.sizes) {
    if (n < 240) sizes.push_back(n);
  }
  sizes.push_back(240);

  CsvTable table({"current_processes", "fit_AH_pct", "fit_MH_pct",
                  "samples"});
  std::vector<double> xs, ahSeries, mhSeries;

  for (const std::size_t size : sizes) {
    std::string group = "n";
    group += std::to_string(size);
    int ahFits = 0, mhFits = 0, samples = 0;
    for (int s = 0; s < scale.seeds; ++s) {
      const InstanceResult* ah = index.find(group, s, "AH");
      const InstanceResult* mh = index.find(group, s, "MH");
      if (ah == nullptr || mh == nullptr) continue;
      ahFits += static_cast<int>(extraValue(*ah, "future_fit"));
      mhFits += static_cast<int>(extraValue(*mh, "future_fit"));
      samples += static_cast<int>(extraValue(*ah, "future_samples"));
    }
    if (samples == 0) continue;
    const double ahPct = 100.0 * ahFits / samples;
    const double mhPct = 100.0 * mhFits / samples;
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(ahPct, 1), CsvTable::num(mhPct, 1),
                  CsvTable::num(static_cast<long long>(samples))});
    xs.push_back(static_cast<double>(size));
    ahSeries.push_back(ahPct);
    mhSeries.push_back(mhPct);
    std::printf("  [n=%zu] future apps mapped: AH %d/%d  MH %d/%d\n", size,
                ahFits, samples, mhFits, samples);
  }

  std::printf("\n");
  printTableAndCsv(table);

  AsciiChart chart("% of future applications mapped",
                   "processes in current application", "% mapped");
  chart.setXAxis(xs);
  chart.addSeries("MH", mhSeries);
  chart.addSeries("AH", ahSeries);
  chart.render(std::cout);

  std::printf(
      "\nPaper shape check: MH stays high across the sweep; AH falls off as\n"
      "the current application grows and naive mapping eats the slack the\n"
      "future applications would need.\n");
  return 0;
}
