// Extension experiment E-MOD (the paper's CODES 2001 follow-up): what does
// allowing modifications of the existing applications buy, and at what
// engineering cost?
//
// Setup: instances whose existing base is badly phased (all applications
// released at phase 0 — the situation that motivates re-design), current
// application of 24 processes on a 4-node platform. We sweep the cost
// weight lambda and report the strict design's C, the modification-aware
// design's C, how many applications were modified, and the paid cost.
#include "bench_common.h"

#include "core/modification.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Extension E-MOD — modification-aware incremental design",
              "Objective C and modification cost vs cost weight lambda "
              "(badly-phased existing base)", scale);

  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.basePeriod = 6000;
  cfg.tmin = 1500;
  cfg.existingProcesses = 60;
  cfg.existingGraphSize = 20;  // several independently modifiable apps
  cfg.currentProcesses = 24;
  cfg.offsetPhases = 1;        // unstaggered legacy base

  CsvTable table({"lambda", "C_strict", "C_modified", "apps_modified",
                  "cost_paid"});

  const std::vector<double> lambdas = {0.0, 2.0, 10.0, 50.0};
  for (const double lambda : lambdas) {
    StatAccumulator cStrict, cMod, nMod, paid;
    for (int s = 0; s < scale.seeds; ++s) {
      const Suite suite =
          buildSuite(cfg, 6000 + static_cast<std::uint64_t>(s));
      // Strict reference: Omega forced empty via prohibitive costs.
      ModificationOptions strictOpts;
      strictOpts.costWeight = 1e12;
      const std::vector<std::int64_t> costs(
          suite.system.applications().size(), 3);
      const ModificationResult strict = designWithModifications(
          suite.system, suite.profile, costs, strictOpts);

      ModificationOptions opts;
      opts.costWeight = lambda;
      opts.maxModifiedApps = 3;
      const ModificationResult mod = designWithModifications(
          suite.system, suite.profile, costs, opts);

      if (!strict.feasible || !mod.feasible) continue;
      cStrict.add(strict.objective);
      cMod.add(mod.objective);
      nMod.add(static_cast<double>(mod.modifiedApps.size()));
      paid.add(static_cast<double>(mod.modificationCost));
    }
    table.addRow({CsvTable::num(lambda, 1), CsvTable::num(cStrict.mean()),
                  CsvTable::num(cMod.mean()), CsvTable::num(nMod.mean(), 2),
                  CsvTable::num(paid.mean(), 2)});
    std::printf("  [lambda=%5.1f] C: strict=%7.2f modified=%7.2f  "
                "apps=%.2f cost=%.2f\n",
                lambda, cStrict.mean(), cMod.mean(), nMod.mean(),
                paid.mean());
  }

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\nShape check: at lambda=0 the search modifies freely and C drops\n"
      "far below the strict design; as lambda grows the paid cost shrinks\n"
      "to zero and C returns to the strict value — the knob trades design\n"
      "quality against re-validation effort, which is the CODES'01 thesis.\n");
  return 0;
}
