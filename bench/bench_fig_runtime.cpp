// Figure F2 (paper slide 16): average execution time of AH, MH and SA
// versus the number of processes in the current application.
//
// Expected shape (paper): SA orders of magnitude above MH, MH above AH,
// all growing with the application size. Absolute values differ from the
// paper (2001 workstation, paper-scale SA budgets); the ordering and the
// growth are the reproduced claims.
//
// The sweep runs through the sharded BatchRunner. NOTE: shards > 1 run
// strategy timings concurrently, which inflates the absolute wall-clock
// numbers under contention — set IDES_BENCH_SHARDS=1 for clean timing
// curves (objectives and evaluation counts are shard-invariant either way).
#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace ides;
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Figure F2 — execution time of the mapping strategies",
              "Avg strategy runtime [s] vs size of the current application",
              scale);

  const InstanceSuite suite = runtimeSweep(scale);
  const BatchReport report = runAndPublish(suite, "fig_runtime", scale);
  const BatchIndex index(report);  // O(1) per-(group, seed, strategy) lookup

  CsvTable table({"current_processes", "AH_seconds", "MH_seconds",
                  "SA_seconds", "MH_evals", "SA_evals"});
  std::vector<double> xs, ahSeries, mhSeries, saSeries;

  for (const std::size_t size : scale.sizes) {
    std::string group = "n";
    group += std::to_string(size);
    StatAccumulator tAh, tMh, tSa, eMh, eSa;
    for (int s = 0; s < scale.seeds; ++s) {
      const InstanceResult* ah = index.find(group, s, "AH");
      const InstanceResult* mh = index.find(group, s, "MH");
      const InstanceResult* sa = index.find(group, s, "SA");
      if (ah == nullptr || mh == nullptr || sa == nullptr) continue;
      tAh.add(ah->outcome.report.seconds);
      tMh.add(mh->outcome.report.seconds);
      tSa.add(sa->outcome.report.seconds);
      eMh.add(static_cast<double>(mh->outcome.report.evaluations));
      eSa.add(static_cast<double>(sa->outcome.report.evaluations));
    }
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(tAh.mean(), 4), CsvTable::num(tMh.mean(), 3),
                  CsvTable::num(tSa.mean(), 3), CsvTable::num(eMh.mean(), 0),
                  CsvTable::num(eSa.mean(), 0)});
    xs.push_back(static_cast<double>(size));
    ahSeries.push_back(tAh.mean());
    mhSeries.push_back(tMh.mean());
    saSeries.push_back(tSa.mean());
    std::printf("  [n=%zu] avg seconds: AH=%.4f MH=%.3f SA=%.3f\n", size,
                tAh.mean(), tMh.mean(), tSa.mean());
  }

  std::printf("\n");
  printTableAndCsv(table);

  AsciiChart chart("Average execution time", "processes in current application",
                   "seconds");
  chart.setXAxis(xs);
  chart.addSeries("SA", saSeries);
  chart.addSeries("MH", mhSeries);
  chart.addSeries("AH", ahSeries);
  chart.render(std::cout);

  std::printf(
      "\nPaper shape check: runtime(SA) >> runtime(MH) >> runtime(AH), all\n"
      "increasing with the current application size.\n");
  return 0;
}
