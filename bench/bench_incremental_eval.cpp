// Incremental vs full-pass evaluation: the cost of one SA/MH inner-loop
// step.
//
// For each instance size, replays the same sequence of random
// single-process moves (node re-map or start-hint change, SA's move mix)
// through both evaluation paths:
//   full — SolutionEvaluator::evaluate: copy the baseline platform state
//          and re-list-schedule every current graph;
//   inc  — EvalContext::evaluate(solution, MoveHint): rewind the journaled
//          state to the checkpoint before the first graph the move touches
//          and re-schedule only from there.
// Costs are asserted bit-identical move by move; the table reports the
// median per-evaluation wall time of each path, the speedup, and how many
// graph schedules the checkpoints saved.
//
// A second series splits the incremental pass by rewind depth, using the
// context's restart telemetry (lastRestartGraph / lastRestartPosition /
// zeroDeltaServes):
//   zero-delta  — the re-scheduled suffix came back entry-identical and the
//                 cached result was served (downstream occupancy restored by
//                 journal replay, no scheduling, no metrics);
//   mid-graph   — the rewind landed on a fine checkpoint inside the restart
//                 graph (only the commit-order suffix re-scheduled);
//   graph-start — the rewind landed on a whole-graph checkpoint.
#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "core/initial_mapping.h"
#include "util/rng.h"

namespace {

using namespace ides;

double medianMs(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

struct MoveSequence {
  std::vector<MappingSolution> trials;
  std::vector<MoveHint> hints;
};

/// SA-style walk of single-process moves, recorded so both evaluation paths
/// replay the identical sequence. Feasible moves are accepted, infeasible
/// ones rejected (decided with an untimed evaluation) — the walk stays in
/// the region SA actually explores, and the occasional rejection exercises
/// the stale-checkpoint verification.
MoveSequence makeMoves(const SolutionEvaluator& evaluator,
                       const MappingSolution& initial, int count,
                       std::uint64_t seed) {
  const SystemModel& sys = evaluator.system();
  Rng rng(seed);
  std::vector<ProcessId> procs;
  for (GraphId g : evaluator.currentGraphs()) {
    const ProcessGraph& graph = sys.graph(g);
    procs.insert(procs.end(), graph.processes.begin(),
                 graph.processes.end());
  }

  EvalContext decide(evaluator);
  MoveSequence seq;
  seq.trials.reserve(static_cast<std::size_t>(count));
  seq.hints.reserve(static_cast<std::size_t>(count));
  MappingSolution current = initial;
  for (int i = 0; i < count; ++i) {
    MappingSolution trial = current;
    const ProcessId p = rng.pick(procs);
    const Process& proc = sys.process(p);
    if (rng.chance(0.5)) {
      const auto allowed = proc.allowedNodes();
      trial.setNode(p, allowed[rng.index(allowed.size())]);
      trial.setStartHint(p, 0);
    } else {
      const ProcessGraph& graph = sys.graph(proc.graph);
      const Time maxHint =
          std::max<Time>(0, graph.deadline - proc.wcetOn(trial.nodeOf(p)));
      trial.setStartHint(p, maxHint > 0 ? rng.uniformInt(0, maxHint) : 0);
    }
    MoveHint hint;
    hint.graph = proc.graph;
    hint.process = p;
    seq.trials.push_back(trial);
    seq.hints.push_back(hint);
    if (decide.evaluate(trial, hint).feasible) current = std::move(trial);
  }
  return seq;
}

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  const int moves = scale.name == "smoke" ? 150
                    : scale.name == "full" ? 800
                                           : 400;
  printHeader(
      "Incremental evaluation — checkpointed platform state + move hints",
      "median cost of one optimization step: full re-schedule vs delta",
      scale);
  std::printf("moves per instance: %d (single-process re-map / start-hint)\n\n",
              moves);

  CsvTable table({"current_processes", "current_graphs", "full_median_ms",
                  "inc_median_ms", "speedup", "graphs_reused_pct",
                  "mismatches"});
  BenchJson json("incremental_eval", scale.name);

  for (const std::size_t size : scale.sizes) {
    const Suite suite = buildSuite(paperConfig(size), 4000);
    const FrozenBase frozen = freezeExistingApplications(suite.system);
    if (!frozen.feasible) {
      std::printf("  [n=%zu] existing base infeasible, skipped\n", size);
      continue;
    }
    const SolutionEvaluator evaluator(suite.system, frozen.state,
                                      suite.profile, MetricWeights{});
    PlatformState state = frozen.state;
    const ScheduleOutcome im = initialMapping(suite.system, state);
    if (!im.feasible) {
      std::printf("  [n=%zu] no initial mapping, skipped\n", size);
      continue;
    }

    const MoveSequence seq =
        makeMoves(evaluator, im.mapping, moves, 77 + size);

    // Pass 1: stateless full evaluations.
    std::vector<double> fullMs;
    std::vector<double> fullCosts;
    fullMs.reserve(seq.trials.size());
    fullCosts.reserve(seq.trials.size());
    for (const MappingSolution& trial : seq.trials) {
      const auto t0 = std::chrono::steady_clock::now();
      const EvalResult r = evaluator.evaluate(trial);
      fullMs.push_back(msSince(t0));
      fullCosts.push_back(r.cost);
    }

    // Pass 2: the delta engine replaying the identical sequence, each move
    // classified by how deep the context actually rewound.
    EvalContext ctx(evaluator);
    ctx.evaluate(im.mapping);  // prime the checkpoints, like SA does
    std::vector<double> incMs;
    std::vector<double> zeroDeltaMs;
    std::vector<double> midGraphMs;
    std::vector<double> graphStartMs;
    incMs.reserve(seq.trials.size());
    std::size_t mismatches = 0;
    std::size_t serves = ctx.zeroDeltaServes();
    for (std::size_t i = 0; i < seq.trials.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const EvalResult r = ctx.evaluate(seq.trials[i], seq.hints[i]);
      const double ms = msSince(t0);
      incMs.push_back(ms);
      if (ctx.zeroDeltaServes() != serves) {
        serves = ctx.zeroDeltaServes();
        zeroDeltaMs.push_back(ms);
      } else if (ctx.lastRestartPosition() > 0) {
        midGraphMs.push_back(ms);
      } else {
        graphStartMs.push_back(ms);
      }
      if (r.cost != fullCosts[i]) ++mismatches;
    }

    const std::size_t graphCount = evaluator.currentGraphs().size();
    const double fullMed = medianMs(fullMs);
    const double incMed = medianMs(incMs);
    const double speedup = incMed > 0.0 ? fullMed / incMed : 0.0;
    const double reusedPct =
        100.0 * static_cast<double>(ctx.graphsReused()) /
        static_cast<double>(ctx.graphsReused() + ctx.graphsScheduled());
    table.addRow({CsvTable::num(static_cast<long long>(size)),
                  CsvTable::num(static_cast<long long>(graphCount)),
                  CsvTable::num(fullMed, 4), CsvTable::num(incMed, 4),
                  CsvTable::num(speedup, 2), CsvTable::num(reusedPct, 1),
                  CsvTable::num(static_cast<long long>(mismatches))});
    const double zdMed = medianMs(zeroDeltaMs);
    const double midMed = medianMs(midGraphMs);
    const double wholeMed = medianMs(graphStartMs);
    json.beginRecord()
        .field("instance", static_cast<long long>(size))
        .field("full_median_ms", fullMed)
        .field("inc_median_ms", incMed)
        .field("speedup", speedup)
        .field("graphs_reused_pct", reusedPct)
        .field("zero_delta_count", static_cast<long long>(zeroDeltaMs.size()))
        .field("zero_delta_median_ms", zdMed)
        .field("mid_graph_count", static_cast<long long>(midGraphMs.size()))
        .field("mid_graph_median_ms", midMed)
        .field("graph_start_count",
               static_cast<long long>(graphStartMs.size()))
        .field("graph_start_median_ms", wholeMed)
        .field("mismatches", static_cast<long long>(mismatches));
    std::printf(
        "  [n=%zu, %zu graphs] full=%.4fms inc=%.4fms -> %.2fx "
        "(%.1f%% graph schedules reused, %zu mismatches)\n"
        "      by rewind depth: zero-delta %zux %.4fms | mid-graph %zux "
        "%.4fms | graph-start %zux %.4fms\n",
        size, graphCount, fullMed, incMed, speedup, reusedPct, mismatches,
        zeroDeltaMs.size(), zdMed, midGraphMs.size(), midMed,
        graphStartMs.size(), wholeMed);
  }

  std::printf("\n");
  printTableAndCsv(table);
  json.write();
  std::printf(
      "\nmismatches must be 0: the delta engine is bit-identical to the\n"
      "full pass (also enforced by core.EvalContext property tests).\n");
  return 0;
}
