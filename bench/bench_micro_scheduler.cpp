// Micro-benchmarks of the evaluation inner loop (ablation A3 in DESIGN.md):
// platform-state copy, list scheduling, slack extraction. These dominate
// the runtime of MH and SA, so their throughput is what makes the paper's
// heuristics tractable at 400+320 processes.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "arch/architecture.h"
#include "core/evaluator.h"
#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "sched/slack.h"
#include "tgen/benchmark_suite.h"

namespace {

using namespace ides;

SuiteConfig configFor(std::size_t currentProcesses) {
  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = currentProcesses;
  cfg.futureAppCount = 0;
  return cfg;
}

struct Instance {
  Suite suite;
  FrozenBase frozen;
  MappingSolution mapping;

  explicit Instance(std::size_t current)
      : suite(buildSuite(configFor(current), 1)),
        frozen(freezeExistingApplications(suite.system)) {
    PlatformState state = frozen.state;
    mapping = initialMapping(suite.system, state).mapping;
  }
};

Instance& instanceFor(std::size_t current) {
  static std::map<std::size_t, std::unique_ptr<Instance>> cache;
  auto& slot = cache[current];
  if (!slot) slot = std::make_unique<Instance>(current);
  return *slot;
}

void BM_PlatformStateCopy(benchmark::State& state) {
  Instance& inst = instanceFor(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    PlatformState copy = inst.frozen.state;
    benchmark::DoNotOptimize(copy.totalNodeSlack());
  }
}
BENCHMARK(BM_PlatformStateCopy)->Arg(80)->Arg(320);

void BM_ScheduleCurrentApplication(benchmark::State& state) {
  Instance& inst = instanceFor(static_cast<std::size_t>(state.range(0)));
  const SystemModel& sys = inst.suite.system;
  ScheduleRequest req;
  req.graphs = sys.graphsOfKind(AppKind::Current);
  req.mapping = &inst.mapping;
  for (auto _ : state) {
    PlatformState copy = inst.frozen.state;
    ScheduleOutcome out = scheduleGraphs(sys, req, copy);
    benchmark::DoNotOptimize(out.feasible);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_ScheduleCurrentApplication)->Arg(40)->Arg(80)->Arg(160)->Arg(320);

void BM_SlackExtraction(benchmark::State& state) {
  Instance& inst = instanceFor(80);
  for (auto _ : state) {
    SlackInfo slack = extractSlack(inst.frozen.state);
    benchmark::DoNotOptimize(slack.totalNodeSlack());
  }
}
BENCHMARK(BM_SlackExtraction);

void BM_FullEvaluation(benchmark::State& state) {
  Instance& inst = instanceFor(static_cast<std::size_t>(state.range(0)));
  SolutionEvaluator eval(inst.suite.system, inst.frozen.state,
                         inst.suite.profile, MetricWeights{});
  for (auto _ : state) {
    EvalResult r = eval.evaluate(inst.mapping);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_FullEvaluation)->Arg(40)->Arg(80)->Arg(160)->Arg(320);

// findBusSlot behind a saturated slot prefix: the first-free-round cursor
// makes the common append O(1) where the old scan walked every full round
// (arg = saturated rounds). The "ready" times sweep the horizon like real
// message release times do, so the cursor path and the binary-search path
// both stay exercised.
void BM_FindBusSlotSaturatedPrefix(benchmark::State& state) {
  const std::int64_t saturated = state.range(0);
  const Architecture arch = makeUniformArchitecture(2, 10, 1);
  const Time round = arch.bus().roundLength();
  PlatformState platform(arch, 4 * saturated * round);
  for (std::int64_t r = 0; r < saturated; ++r) platform.occupyBus(0, r, 10);
  Time ready = 0;
  for (auto _ : state) {
    auto hit = platform.findBusSlot(0, ready, 4);
    benchmark::DoNotOptimize(hit);
    ready = (ready + 37) % (saturated * round);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindBusSlotSaturatedPrefix)->Arg(64)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
