// Micro-benchmarks of the evaluation inner loop (ablation A3 in DESIGN.md):
// platform-state copy, list scheduling, slack extraction. These dominate
// the runtime of MH and SA, so their throughput is what makes the paper's
// heuristics tractable at 400+320 processes.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "core/evaluator.h"
#include "core/initial_mapping.h"
#include "model/system_model.h"
#include "sched/slack.h"
#include "tgen/benchmark_suite.h"

namespace {

using namespace ides;

SuiteConfig configFor(std::size_t currentProcesses) {
  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = currentProcesses;
  cfg.futureAppCount = 0;
  return cfg;
}

struct Instance {
  Suite suite;
  FrozenBase frozen;
  MappingSolution mapping;

  explicit Instance(std::size_t current)
      : suite(buildSuite(configFor(current), 1)),
        frozen(freezeExistingApplications(suite.system)) {
    PlatformState state = frozen.state;
    mapping = initialMapping(suite.system, state).mapping;
  }
};

Instance& instanceFor(std::size_t current) {
  static std::map<std::size_t, std::unique_ptr<Instance>> cache;
  auto& slot = cache[current];
  if (!slot) slot = std::make_unique<Instance>(current);
  return *slot;
}

void BM_PlatformStateCopy(benchmark::State& state) {
  Instance& inst = instanceFor(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    PlatformState copy = inst.frozen.state;
    benchmark::DoNotOptimize(copy.totalNodeSlack());
  }
}
BENCHMARK(BM_PlatformStateCopy)->Arg(80)->Arg(320);

void BM_ScheduleCurrentApplication(benchmark::State& state) {
  Instance& inst = instanceFor(static_cast<std::size_t>(state.range(0)));
  const SystemModel& sys = inst.suite.system;
  ScheduleRequest req;
  req.graphs = sys.graphsOfKind(AppKind::Current);
  req.mapping = &inst.mapping;
  for (auto _ : state) {
    PlatformState copy = inst.frozen.state;
    ScheduleOutcome out = scheduleGraphs(sys, req, copy);
    benchmark::DoNotOptimize(out.feasible);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_ScheduleCurrentApplication)->Arg(40)->Arg(80)->Arg(160)->Arg(320);

void BM_SlackExtraction(benchmark::State& state) {
  Instance& inst = instanceFor(80);
  for (auto _ : state) {
    SlackInfo slack = extractSlack(inst.frozen.state);
    benchmark::DoNotOptimize(slack.totalNodeSlack());
  }
}
BENCHMARK(BM_SlackExtraction);

void BM_FullEvaluation(benchmark::State& state) {
  Instance& inst = instanceFor(static_cast<std::size_t>(state.range(0)));
  SolutionEvaluator eval(inst.suite.system, inst.frozen.state,
                         inst.suite.profile, MetricWeights{});
  for (auto _ : state) {
    EvalResult r = eval.evaluate(inst.mapping);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_FullEvaluation)->Arg(40)->Arg(80)->Arg(160)->Arg(320);

}  // namespace

BENCHMARK_MAIN();
