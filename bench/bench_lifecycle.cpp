// Lifecycle replay — warm vs cold start over a long-horizon scenario.
//
// The paper optimizes one design step; a product lives through hundreds.
// This bench replays the default lifecycle scenario (50 events: graphs
// added, removed, re-specified, deadlines tightened, platform perturbed)
// under both start policies across a deterministic iteration-budget
// ladder, answering the question the lifecycle subsystem exists for: at a
// fixed per-step budget, how much quality does warm-starting from the
// previous step's committed placements buy over a cold Initial Mapping?
//
// Quality is the median final cost over feasible steps (lower is better);
// the per-step latency median tracks what a budget costs in wall clock.
// Budgets are SA iterations, not wall-clock deadlines, so every reported
// cost is deterministic — rerun the bench and the quality columns diff
// clean (only the *_seconds fields move).
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "lifecycle/lifecycle_runner.h"

namespace {

using namespace ides;

double medianSeconds(const std::vector<LifecycleStep>& steps) {
  std::vector<double> seconds;
  seconds.reserve(steps.size());
  for (const LifecycleStep& s : steps) seconds.push_back(s.seconds);
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const std::size_t mid = seconds.size() / 2;
  return seconds.size() % 2 == 1
             ? seconds[mid]
             : 0.5 * (seconds[mid - 1] + seconds[mid]);
}

}  // namespace

int main() {
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  const std::vector<int> budgets = scale.name == "smoke"
                                       ? std::vector<int>{25, 100}
                                   : scale.name == "full"
                                       ? std::vector<int>{25, 100, 400, 1600}
                                       : std::vector<int>{25, 100, 400};
  printHeader(
      "Lifecycle replay — warm vs cold start",
      "median quality at a fixed per-step budget over a 50-event lifetime",
      scale);

  ScenarioConfig config;  // the default 50-step scenario, seed 1
  const LifecycleScenario scenario = generateScenario(config);
  std::printf("scenario: %d events, %zu-node platform, budgets per step: ",
              config.steps, config.nodeCount);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    std::printf("%s%d", i == 0 ? "" : ", ", budgets[i]);
  }
  std::printf(" SA iterations\n\n");

  CsvTable table({"iters_per_step", "policy", "feasible_steps",
                  "warm_starts", "median_cost", "median_step_ms",
                  "total_seconds"});
  BenchJson json("lifecycle", scale.name);

  bool warmDominates = true;
  for (const int budget : budgets) {
    double medians[2] = {0.0, 0.0};
    for (const StartPolicy policy : {StartPolicy::Warm, StartPolicy::Cold}) {
      LifecycleOptions options;
      options.strategy = "SA";
      options.policy = policy;
      options.designer.sa.iterations = budget;
      const LifecycleReport report = runLifecycle(scenario, options);

      const double stepMs = medianSeconds(report.steps) * 1000.0;
      medians[policy == StartPolicy::Cold] = report.medianCost;
      table.addRow({CsvTable::num(static_cast<long long>(budget)),
                    toString(policy),
                    CsvTable::num(
                        static_cast<long long>(report.feasibleSteps)),
                    CsvTable::num(static_cast<long long>(report.warmStarts)),
                    CsvTable::num(report.medianCost, 4),
                    CsvTable::num(stepMs, 3),
                    CsvTable::num(report.totalSeconds, 3)});
      json.beginRecord()
          .field("iters_per_step", static_cast<long long>(budget))
          .field("policy", std::string(toString(policy)))
          .field("steps", static_cast<long long>(report.steps.size()))
          .field("feasible_steps",
                 static_cast<long long>(report.feasibleSteps))
          .field("warm_starts", static_cast<long long>(report.warmStarts))
          .field("median_cost", report.medianCost)
          .field("median_step_seconds", stepMs / 1000.0)
          .field("total_seconds", report.totalSeconds);
      std::printf("  [iters=%d %s] feasible %zu/%zu, median C=%.4f, "
                  "step median %.3fms\n",
                  budget, toString(policy), report.feasibleSteps,
                  report.steps.size(), report.medianCost, stepMs);
    }
    if (!(medians[0] < medians[1])) warmDominates = false;
    std::printf("      warm vs cold at %d iters: %.4f vs %.4f (%s)\n",
                budget, medians[0], medians[1],
                medians[0] < medians[1] ? "warm wins" : "cold wins");
  }

  std::printf("\n");
  printTableAndCsv(table);
  json.write();
  std::printf("\nwarm %s cold across every budget on this scenario.\n",
              warmDominates ? "strictly dominates" : "does NOT dominate");
  return warmDominates ? 0 : 1;
}
