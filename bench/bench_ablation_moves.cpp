// Ablation A1: the value of MH's "highest potential" move selection.
//
// The paper's MH examines only the design transformations with the highest
// potential to improve C (processes bordering small slack fragments or
// inside starved Tmin windows, targets ranked by periodic headroom). This
// ablation pits MH against a same-acceptance-rule hill-climber that draws
// its moves uniformly at random, at several evaluation budgets. Two honest
// observations fall out on these synthetic instances: (1) both leave IM far
// behind — the transformation *set* (move process/message into another
// slack) is what matters most; (2) random descent is a strong early
// competitor, because right after IM nearly every evacuation of the crammed
// first window improves C. MH's structured scan is what gives the heuristic
// a deterministic, parameter-free stopping point (its local minimum) at a
// comparable cost, which is the property the paper's methodology needs.
#include "bench_common.h"

#include "core/initial_mapping.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ides;

/// Greedy hill-climber with uniformly random moves, stopped after
/// `evaluationBudget` evaluations.
double randomHillClimb(const SolutionEvaluator& eval,
                       const MappingSolution& initial,
                       std::size_t evaluationBudget, std::uint64_t seed) {
  const SystemModel& sys = eval.system();
  Rng rng(seed);
  std::vector<ProcessId> procs;
  for (GraphId g : eval.currentGraphs()) {
    const ProcessGraph& graph = sys.graph(g);
    procs.insert(procs.end(), graph.processes.begin(),
                 graph.processes.end());
  }
  MappingSolution best = initial;
  double bestCost = eval.evaluate(best).cost;
  for (std::size_t i = 1; i < evaluationBudget; ++i) {
    MappingSolution trial = best;
    const ProcessId p = rng.pick(procs);
    const Process& proc = sys.process(p);
    const auto allowed = proc.allowedNodes();
    const NodeId n = allowed[rng.index(allowed.size())];
    trial.setNode(p, n);
    const ProcessGraph& graph = sys.graph(proc.graph);
    const Time maxHint = std::max<Time>(0, graph.deadline - proc.wcetOn(n));
    trial.setStartHint(p, maxHint > 0 ? rng.uniformInt(0, maxHint) : 0);
    const double cost = eval.evaluate(trial).cost;
    if (cost < bestCost) {
      bestCost = cost;
      best = std::move(trial);
    }
  }
  return bestCost;
}

/// MH stopped after `evaluationBudget` evaluations.
double mhWithBudget(const SolutionEvaluator& eval,
                    const MappingSolution& initial,
                    std::size_t evaluationBudget, std::size_t* evalsUsed) {
  MhOptions opts;
  opts.maxEvaluations = evaluationBudget;
  const MhResult r = runMappingHeuristic(eval, initial, opts);
  if (evalsUsed != nullptr) *evalsUsed = r.evaluations;
  return r.eval.cost;
}

}  // namespace

int main() {
  using namespace ides::bench;

  const BenchScale scale = benchScale();
  printHeader("Ablation A1 — MH move selection",
              "Potential-driven vs random moves at equal evaluation budgets "
              "(current app: 240 processes)", scale);

  CsvTable table({"budget_evals", "C_IM", "C_MH", "C_random"});

  const std::size_t size = 240;
  const std::vector<std::size_t> budgets = {120, 400, 1600};
  for (const std::size_t budget : budgets) {
    StatAccumulator cIm, cMh, cRnd;
    for (int s = 0; s < scale.seeds; ++s) {
      const Suite suite =
          buildSuite(paperConfig(size), 4000 + static_cast<std::uint64_t>(s));
      const FrozenBase frozen = freezeExistingApplications(suite.system);
      SolutionEvaluator eval(suite.system, frozen.state, suite.profile,
                             MetricWeights{});
      PlatformState state = frozen.state;
      const ScheduleOutcome im = initialMapping(suite.system, state);
      const double imCost = eval.evaluate(im.mapping).cost;

      std::size_t used = 0;
      const double mh = mhWithBudget(eval, im.mapping, budget, &used);
      const double rnd = randomHillClimb(eval, im.mapping, budget,
                                         static_cast<std::uint64_t>(s) + 1);
      cIm.add(imCost);
      cMh.add(mh);
      cRnd.add(rnd);
      std::printf("  [budget=%4zu seed=%d] IM=%7.2f MH=%7.2f (used %4zu) "
                  "random=%7.2f\n",
                  budget, s, imCost, mh, used, rnd);
    }
    table.addRow({CsvTable::num(static_cast<long long>(budget)),
                  CsvTable::num(cIm.mean()), CsvTable::num(cMh.mean()),
                  CsvTable::num(cRnd.mean())});
  }

  std::printf("\n");
  printTableAndCsv(table);
  std::printf(
      "\nShape check: both searches improve far past IM at every budget —\n"
      "the slack-targeted transformation set is doing the work. MH stops\n"
      "deterministically at its local minimum (no tuning, bounded cost);\n"
      "unbounded random descent keeps inching further, which is the niche\n"
      "the paper fills with SA.\n");
  return 0;
}
