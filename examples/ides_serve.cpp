// ides_serve — design-as-a-service daemon.
//
// Long-running front of the library: accepts design and sweep jobs over a
// JSON HTTP API, runs them on a bounded worker pool (one StopToken per
// job: cooperative cancel via DELETE, per-job deadlines), and answers
// identical sweep jobs out of the content-addressed sweep store with no
// re-optimization. See serve/daemon.h for the endpoint surface and
// README "Design-as-a-service" for a curl walkthrough.
//
// Process discipline: --config/flags (daemon.h), optional pidfile
// (refuses an existing one), structured request log to --log or stderr,
// SIGINT/SIGTERM graceful drain — stop accepting connections, cancel
// queued jobs, fire running jobs' stop tokens, join, remove the pidfile,
// exit 0.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "serve/daemon.h"
#include "serve/http_server.h"
#include "serve/job_manager.h"
#include "serve/sweep_coordinator.h"
#include "util/log.h"
#include "util/stop_token.h"

namespace {

// Signal handlers may only touch lock-free atomics; StopToken::requestStop
// is a single atomic store, which is exactly that.
ides::StopToken g_stop;

extern "C" void handleSignal(int) { g_stop.requestStop(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace ides;

  ServeOptions options;
  std::string error;
  bool helpRequested = false;
  if (!parseServeOptions(argc, argv, options, error, helpRequested)) {
    std::fprintf(stderr, "ides_serve: %s\n%s", error.c_str(), serveUsage());
    return 2;
  }
  if (helpRequested) {
    std::fputs(serveUsage(), stdout);
    return 0;
  }
  // The flag wins over IDES_LOG (the threshold's env default).
  if (!options.logLevel.empty()) {
    setLogThreshold(parseLogLevel(options.logLevel, LogLevel::Warn));
  }

  std::FILE* log = stderr;
  if (!options.logFile.empty()) {
    log = std::fopen(options.logFile.c_str(), "a");
    if (log == nullptr) {
      std::fprintf(stderr, "ides_serve: cannot open log file %s\n",
                   options.logFile.c_str());
      return 1;
    }
  }
  const auto logLine = [log](const std::string& line) {
    std::fprintf(log, "%s\n", line.c_str());
    std::fflush(log);
  };

  if (!options.pidFile.empty() && !writePidFile(options.pidFile, error)) {
    std::fprintf(stderr, "ides_serve: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, handleSignal);
  std::signal(SIGTERM, handleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // a hung-up client must not kill us

  int exitCode = 0;
  try {
    JobManagerOptions jobOptions;
    jobOptions.workers = options.workers;
    jobOptions.maxQueued = static_cast<std::size_t>(options.maxQueued);
    jobOptions.retainFinished =
        static_cast<std::size_t>(options.retainFinished);
    jobOptions.storeDir = options.storeDir;
    JobManager jobs(jobOptions);

    // The sweep coordinator (HTTP transport of the sweep fabric) needs a
    // store to persist records into; without --store-dir the /sweeps
    // surface answers 503.
    std::unique_ptr<SweepCoordinator> sweeps;
    if (!options.storeDir.empty()) {
      sweeps = std::make_unique<SweepCoordinator>(options.storeDir);
    }
    ServeRuntime runtime{jobs, sweeps.get(), options.storeDir};

    HttpServer server(options.bindAddress, options.port);
    logLine("event=listening bind=" + options.bindAddress + " port=" +
            std::to_string(server.port()) + " workers=" +
            std::to_string(options.workers) + " store=" +
            (options.storeDir.empty() ? "-" : options.storeDir));
    // Ephemeral ports (tests, parallel CI) need the resolved port on a
    // parseable channel regardless of where the log goes.
    std::printf("ides_serve listening on %s:%d\n",
                options.bindAddress.c_str(), server.port());
    std::fflush(stdout);

    server.serve(
        [&runtime](const HttpRequest& request) {
          return routeRequest(runtime, request);
        },
        &g_stop,
        [&logLine](const RequestLogEntry& entry) {
          recordRequestTelemetry(entry);
          logLine(requestLogLine(entry));
        });

    logLine("event=draining queued=" + std::to_string(jobs.queuedCount()) +
            " running=" + std::to_string(jobs.runningCount()));
    jobs.drain();
    logLine("event=shutdown requests=" +
            std::to_string(server.requestsServed()) + " finished_jobs=" +
            std::to_string(jobs.finishedCount()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ides_serve: %s\n", e.what());
    logLine(std::string("event=fatal error=") + e.what());
    exitCode = 1;
  }

  if (!options.pidFile.empty()) removePidFile(options.pidFile);
  if (log != stderr) std::fclose(log);
  return exitCode;
}
