// Modification-aware redesign — the paper's announced follow-up (CODES
// 2001): when the frozen existing applications were phased badly, paying
// the re-validation cost of modifying a FEW of them can buy back far more
// design quality than any mapping of the current application alone.
//
// The example builds a system whose existing base is deliberately
// unstaggered (all applications released at phase 0 — the worst case for
// the slack-distribution criterion), then compares:
//   1. strict incremental design (requirement a: touch nothing), vs.
//   2. modification-aware design with per-application modification costs.
//
// Build & run:  ./build/examples/modification_redesign
#include <cstdio>

#include "core/incremental_designer.h"
#include "core/modification.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"

int main() {
  using namespace ides;

  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.basePeriod = 6000;
  cfg.tmin = 1500;
  cfg.existingProcesses = 60;
  cfg.existingGraphSize = 20;  // several small existing applications
  cfg.currentProcesses = 24;
  cfg.offsetPhases = 1;        // badly phased legacy base
  const Suite suite = buildSuite(cfg, /*seed=*/31);
  const SystemModel& sys = suite.system;

  std::printf("existing applications (all released at phase 0):\n");
  for (ApplicationId app : sys.applicationsOfKind(AppKind::Existing)) {
    std::printf("  %-10s %zu processes\n", sys.application(app).name.c_str(),
                sys.processesOfKind(AppKind::Existing).size() /
                    sys.applicationsOfKind(AppKind::Existing).size());
  }

  // 1. Strict incremental design.
  IncrementalDesigner designer(sys, suite.profile);
  const DesignResult strict = designer.run(Strategy::MappingHeuristic);
  std::printf("\nstrict (no modifications):      C = %8.2f   C2P = %lld\n",
              strict.objective, static_cast<long long>(strict.metrics.c2p));

  // 2. Modification-aware: each existing application carries the cost of
  //    re-validating it (say, in engineer-days); app 0 is legacy-critical.
  std::vector<std::int64_t> costs(sys.applications().size(), 3);
  const auto existing = sys.applicationsOfKind(AppKind::Existing);
  costs[existing.front().index()] = kCannotModify;  // certified, frozen
  ModificationOptions opts;
  opts.costWeight = 2.0;  // objective points one engineer-day must buy
  opts.maxModifiedApps = 2;
  const ModificationResult mod =
      designWithModifications(sys, suite.profile, costs, opts);

  std::printf("modification-aware:             C = %8.2f   C2P = %lld\n",
              mod.objective, static_cast<long long>(mod.metrics.c2p));
  std::printf("  modified applications: ");
  if (mod.modifiedApps.empty()) {
    std::printf("(none)");
  }
  for (ApplicationId app : mod.modifiedApps) {
    std::printf("%s ", sys.application(app).name.c_str());
  }
  std::printf("\n  modification cost: %lld engineer-days, total objective "
              "%0.2f\n",
              static_cast<long long>(mod.modificationCost), mod.totalCost);

  std::printf(
      "\nReading the result: the greedy subset search unfreezes existing\n"
      "applications only while an objective point gained is worth the\n"
      "re-validation cost (costWeight), and never touches the certified\n"
      "application marked kCannotModify.\n");
  return 0;
}
