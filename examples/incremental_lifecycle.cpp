// The incremental design lifecycle across three product versions
// (paper slides 6-8):
//
//   Version N-1: the platform already runs 400 processes of existing
//                applications (frozen).
//   Version N:   a 240-process current application must be mapped WITHOUT
//                touching the existing ones — once naively (AH), once
//                future-aware (MH).
//   Version N+1: future applications arrive. On the AH design they no
//                longer fit; on the MH design they do.
//
// Instead of a (unreadably dense) Gantt, the example prints the per-window
// slack profile — the quantity the paper's second criterion is about: how
// much processor time each Tmin window still guarantees.
//
// Build & run:  ./build/examples/incremental_lifecycle
#include <cstdio>

#include "core/future_fit.h"
#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "sched/slack.h"
#include "tgen/benchmark_suite.h"

namespace {

void printWindowProfile(const char* label, const ides::PlatformState& state,
                        ides::Time tmin) {
  using namespace ides;
  const SlackInfo slack = extractSlack(state);
  const std::int64_t windows = slack.horizon / tmin;
  std::printf("  %-28s", label);
  Time minSlack = kTimeMax;
  for (std::int64_t w = 0; w < windows; ++w) {
    Time total = 0;
    for (std::size_t n = 0; n < slack.nodeFree.size(); ++n) {
      total += slack.nodeSlackInWindow(n, w * tmin, (w + 1) * tmin);
    }
    minSlack = std::min(minSlack, total);
    std::printf(" %7lld", static_cast<long long>(total));
  }
  std::printf("   (min %lld)\n", static_cast<long long>(minSlack));
}

}  // namespace

int main() {
  using namespace ides;

  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = 240;
  cfg.futureAppCount = 3;
  cfg.futureProcesses = 80;
  cfg.tneedOverride = 12000;  // "most demanding" future app, with margin
  std::printf("building the version history (10 nodes, 400 existing + 240 "
              "current processes)...\n\n");
  const Suite suite = buildSuite(cfg, /*seed=*/1);
  const SystemModel& sys = suite.system;

  IncrementalDesigner designer(sys, suite.profile);

  std::printf("== Version N-1: existing applications frozen ==\n");
  std::printf("  %zu process instances scheduled; nothing may move them "
              "again.\n\n",
              designer.frozenSchedule().processEntryCount());

  std::printf("== Version N: map the current application ==\n");
  const DesignResult ah = designer.run(Strategy::AdHoc);
  const DesignResult mh = designer.run(Strategy::MappingHeuristic);
  std::printf("  AH: C=%7.2f   guaranteed periodic slack C2P=%6lld "
              "(tneed=%lld)\n",
              ah.objective, static_cast<long long>(ah.metrics.c2p),
              static_cast<long long>(suite.profile.tneed));
  std::printf("  MH: C=%7.2f   guaranteed periodic slack C2P=%6lld\n\n",
              mh.objective, static_cast<long long>(mh.metrics.c2p));

  const PlatformState afterAh = designer.stateWith(ah);
  const PlatformState afterMh = designer.stateWith(mh);
  std::printf("  total processor slack per Tmin window [ticks]:\n");
  printWindowProfile("existing only:", designer.frozenBase().state,
                     suite.profile.tmin);
  printWindowProfile("after AH (naive):", afterAh, suite.profile.tmin);
  printWindowProfile("after MH (future-aware):", afterMh,
                     suite.profile.tmin);
  std::printf(
      "  AH piles the new load onto the early windows (its minimum "
      "collapses);\n  MH levels the load so every window keeps room for a "
      "Tmin-periodic\n  future application.\n\n");

  std::printf("== Version N+1: future applications arrive ==\n");
  for (ApplicationId app : sys.applicationsOfKind(AppKind::Future)) {
    const bool fitsAh = tryMapFutureApplication(sys, app, afterAh).fits;
    const bool fitsMh = tryMapFutureApplication(sys, app, afterMh).fits;
    std::printf("  %-10s fits after AH: %-3s   fits after MH: %s\n",
                sys.application(app).name.c_str(), fitsAh ? "yes" : "NO",
                fitsMh ? "yes" : "NO");
  }
  std::printf(
      "\nThe point of the paper: both designs satisfied version N equally\n"
      "well; only the future-aware one is still extensible at version "
      "N+1.\n");
  return 0;
}
