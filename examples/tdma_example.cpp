// The paper's worked example (slide 5): four processes, two nodes, four
// messages over a TDMA bus, rendered as an ASCII Gantt chart.
//
// P1 -> P2, P1 -> P3, P2 -> P4, P3 -> P4 (a "diamond"). P1 and P4 are
// sensor/actuator processes pinned to node N0; P2 is pinned to N1; P3 can
// run on either node. Watch the scheduler: m1 rides N0's TDMA slot in round
// 1; P3 is mapped next to P1 so m2 never touches the bus; P4 waits for m3
// out of N1's slot.
//
// Build & run:  ./build/examples/tdma_example
#include <cstdio>

#include "model/system_model.h"
#include "sched/gantt.h"
#include "sched/list_scheduler.h"
#include "sched/slack.h"

int main() {
  using namespace ides;

  // Two nodes, slots of 10 ticks each (round = 20), 1 byte per tick.
  SystemModel sys(makeUniformArchitecture(2, 10, 1));
  const ApplicationId app = sys.addApplication("example", AppKind::Current);
  const GraphId g = sys.addGraph(app, /*period=*/200);
  const ProcessId p1 = sys.addProcess(g, "P1", {10, kNoTime});
  const ProcessId p2 = sys.addProcess(g, "P2", {kNoTime, 20});
  const ProcessId p3 = sys.addProcess(g, "P3", {15, 15});
  const ProcessId p4 = sys.addProcess(g, "P4", {10, kNoTime});
  sys.addMessage(g, p1, p2, 4);
  sys.addMessage(g, p1, p3, 4);
  sys.addMessage(g, p2, p4, 4);
  sys.addMessage(g, p3, p4, 4);
  sys.finalize();

  PlatformState state(sys.architecture(), sys.hyperperiod());
  ScheduleRequest req;
  req.graphs = {g};
  req.chooseNodes = true;  // HCP decides P3's node
  const ScheduleOutcome out = scheduleGraphs(sys, req, state);

  std::printf("feasible: %s\n", out.feasible ? "yes" : "no");
  for (const ScheduledProcess& sp : out.schedule.processes()) {
    std::printf("  %-3s on N%d: [%3lld, %3lld)\n",
                sys.process(sp.pid).name.c_str(), sp.node.value,
                static_cast<long long>(sp.start),
                static_cast<long long>(sp.end));
  }
  for (const ScheduledMessage& sm : out.schedule.messages()) {
    std::printf("  m%-2d in slot %zu, round %lld: [%3lld, %3lld)\n",
                sm.mid.value + 1, sm.slotIndex,
                static_cast<long long>(sm.round),
                static_cast<long long>(sm.start),
                static_cast<long long>(sm.end));
  }

  std::printf("\n%s\n", renderGantt(sys, out.schedule).c_str());

  const SlackInfo slack = extractSlack(state);
  std::printf("slack left on N0: %lld ticks, N1: %lld ticks, bus: %lld "
              "ticks\n",
              static_cast<long long>(slack.nodeFree[0].totalLength()),
              static_cast<long long>(slack.nodeFree[1].totalLength()),
              static_cast<long long>(slack.totalBusFreeTicks()));
  return 0;
}
