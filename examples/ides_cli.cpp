// ides_cli — command-line driver for the library.
//
// Subcommands:
//   stats    [--nodes N --existing E --current C --seed S]
//            generate a suite and print its statistics report
//   design   [--strategy NAME] [--sa-iters N] [--restarts K] [--threads T]
//            [--spec-workers W] [--spec-depth D] [--deadline S] [suite flags]
//            run one registered strategy, print metrics and validation
//   schedule [--out FILE] [suite flags]
//            run MH and dump the merged schedule (CSV form, stdout or file)
//   dot      [suite flags]
//            emit the current application's process graphs as Graphviz DOT
//   sweep    --suite NAME [--shards N] [--deadline S] [--scale SCALE]
//            [--store-dir DIR [--resume]] [--no-timing] [--cancel-after N]
//            run a paper sweep through the sharded BatchRunner and write
//            BENCH_sweep_<NAME>.json (IDES_BENCH_JSON_DIR). With a store
//            dir, completed instances persist as content-addressed records;
//            --resume skips instances whose records already exist.
//   sweep --serve DIR  --suite NAME [--scale SCALE] [--lease-seconds S]
//            coordinate a cross-process sweep over a shared directory:
//            publish the work manifest, participate in running instances,
//            and merge the records into the canonical BENCH json
//   sweep --worker DIR [--lease-seconds S]
//            join a served sweep: claim instances through file leases, run
//            them, write records; exits when the sweep is complete
//   sweep --worker http://HOST:PORT/KEY [--lease-seconds S]
//            join a sweep coordinated by ides_serve over HTTP: claims,
//            renewals and records travel the network instead of a shared
//            mount; exits nonzero with a reason when the coordinator
//            vanishes (after capped-backoff retries)
//   store <ls|verify> --store-dir DIR
//            read-only audit of a sweep store: ls lists records
//            (fingerprint, suite, instance, strategy, age), verify checks
//            schema + fingerprint per record and reports the quarantine;
//            verify exits 1 when anything is bad
//   store gc --store-dir DIR [--epoch N] [--older-than AGE] [--apply]
//            reap quarantined records (always) plus records superseded by
//            an epoch bump or older than AGE (s/m/h/d suffix); dry run
//            unless --apply; never touches records named by a live
//            manifest.json in the store
//   lifecycle (--scenario FILE | --gen [--seed N] [--steps K])
//            [--policy warm|cold] [--strategy NAME] [--sa-iters N]
//            [--step-deadline S] [--scenario-out FILE] [--json]
//            [--no-timing] [--out FILE]
//            replay a lifecycle scenario (long-horizon stream of add /
//            remove / re-spec / perturb events), re-optimizing after every
//            event under the chosen start policy; --gen generates the
//            scenario from --seed/--steps, --scenario-out saves it for
//            sharing, --json prints the report JSON (deterministic with
//            --no-timing and no --step-deadline)
//   list-strategies
//            print the registered optimizer names (also --list-strategies)
//
// Strategies resolve by name against StrategyRegistry::builtin(), so any
// registered optimizer works; unknown names list the valid set. All flags
// have defaults; every run is deterministic for a given --seed (and for a
// sweep, for any --shards value).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include <chrono>
#include <thread>

#include "core/batch_runner.h"
#include "core/batch_suites.h"
#include "core/incremental_designer.h"
#include "lifecycle/lifecycle_runner.h"
#include "model/dot_export.h"
#include "model/model_io.h"
#include "model/system_stats.h"
#include "obs/telemetry.h"
#include "sched/schedule_io.h"
#include "sched/validate.h"
#include "serve/design_job.h"
#include "store/remote_queue.h"
#include "store/store_audit.h"
#include "store/store_gc.h"
#include "store/sweep_store.h"
#include "store/work_queue.h"
#include "tgen/benchmark_suite.h"
#include "tgen/profile_presets.h"
#include "util/log.h"
#include "util/provenance.h"
#include "util/stop_token.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace {

using namespace ides;

struct CliArgs {
  std::string command;
  std::string action;  // store: "ls" | "verify"
  std::size_t nodes = 10;
  std::size_t existing = 400;
  std::size_t current = 160;
  std::uint64_t seed = 1;
  std::string strategy = "MH";
  int saIterations = 0;  // 0 = SaOptions default
  int threads = 0;       // PSA: 0 = hardware concurrency
  int restarts = 4;      // PSA: chains
  int specWorkers = 0;   // SA: speculative eval workers (0 = off; PSA: auto)
  int specDepth = 0;     // max speculation depth (0 = 4 * workers)
  bool listStrategies = false;
  std::string suiteName;   // sweep: which paper sweep to run
  std::string scaleName;   // sweep: explicit scale (else IDES_BENCH_SCALE)
  int shards = 0;          // sweep: 0 = all cores
  double deadlineSeconds = 0.0;  // 0 = no deadline
  std::string storeDir;    // sweep: persistent record store (write-through)
  bool resume = false;     // sweep: also REUSE store records (skip done)
  std::string serveDir;    // sweep: coordinate a cross-process run here
  std::string workerDir;   // sweep: join the cross-process run here
  double leaseSeconds = 600.0;   // claim lease duration (serve/worker)
  bool jsonOutput = false; // design: deterministic result JSON on stdout
  bool noTiming = false;   // deterministic BENCH json (no wall-clock)
  std::int64_t gcEpoch = -1;   // store gc: reap records below this epoch
  std::string olderThan;       // store gc: age threshold ("3600", "2h", ...)
  bool apply = false;          // store gc: actually delete (else dry run)
  int cancelAfter = 0;     // testing aid: request stop after N instances
  bool genScenario = false;      // lifecycle: generate instead of loading
  std::string scenarioFile;      // lifecycle: scenario JSON to replay
  std::string scenarioOut;       // lifecycle: save the scenario JSON here
  int steps = 0;                 // lifecycle --gen: events (0 = default 50)
  double stepDeadlineSeconds = 0.0;  // lifecycle: per-step budget (0 = off)
  std::string policyName = "warm";   // lifecycle: warm | cold
  bool telemetryDump = false;  // print the telemetry snapshot to stderr
  std::string logLevel;        // log threshold flag; wins over IDES_LOG
  std::string outFile;
  std::string modelFile;  // load a hand-written model instead of generating
  Time tmin = 0;          // profile for --model runs (0 = hyperperiod / 4)
  Time tneed = 0;
  std::int64_t bneed = 0;
};

void usage() {
  std::puts(
      "usage: ides_cli <stats|design|schedule|dot|sweep|store|lifecycle|"
      "list-strategies> [options]\n"
      "  --nodes N      architecture size        (default 10)\n"
      "  --existing E   existing processes       (default 400)\n"
      "  --current C    current-app processes    (default 160)\n"
      "  --seed S       generator seed           (default 1)\n"
      "  --strategy X   registered strategy name (default MH;\n"
      "                 see --list-strategies)\n"
      "  --sa-iters N   SA iterations (per chain for PSA)\n"
      "  --restarts K   PSA chains               (default 4)\n"
      "  --threads T    PSA threads, 0 = all cores (default 0)\n"
      "  --spec-workers W  speculative eval workers per SA chain\n"
      "                 (SA default 1 = off; PSA default 0 = auto split)\n"
      "  --spec-depth D max speculation depth (default 4 * workers)\n"
      "  --deadline S   cooperative wall-clock budget in seconds; the run\n"
      "                 stops early with its best solution so far\n"
      "  --json         design: print the deterministic result JSON (the\n"
      "                 exact bytes ides_serve returns for the same job)\n"
      "  --suite NAME   sweep to run: quality | runtime | future |\n"
      "                 weights | increments\n"
      "  --shards N     sweep worker threads, 0 = all cores (default 0);\n"
      "                 results are bit-identical for every value\n"
      "  --scale NAME   sweep scale smoke | default | full\n"
      "                 (default: IDES_BENCH_SCALE)\n"
      "  --store-dir D  persist completed sweep instances as records in D\n"
      "                 (also: the directory store ls/verify audits)\n"
      "  --resume       with --store-dir: skip instances whose records\n"
      "                 already exist (resume a cancelled sweep)\n"
      "  --serve D      coordinate a cross-process sweep over directory D\n"
      "                 (publishes the manifest, participates, merges)\n"
      "  --worker D     join the sweep served at directory D, or at an\n"
      "                 ides_serve coordinator (http://HOST:PORT/KEY)\n"
      "  --lease-seconds S  claim lease duration for serve/worker\n"
      "                 (default 600; renewal heartbeats keep a live\n"
      "                 worker's claim fresh, so slow instances are safe)\n"
      "  --epoch N      store gc: reap records below fingerprint epoch N\n"
      "  --older-than AGE  store gc: reap records older than AGE\n"
      "                 (seconds, or s/m/h/d suffix: 2h, 30m, 7d)\n"
      "  --apply        store gc: delete (without it, dry run only)\n"
      "  --no-timing    render BENCH json without wall-clock fields\n"
      "                 (byte-identical across runs/workers/resume)\n"
      "  --cancel-after N  request stop after N completed instances\n"
      "                 (deterministic cancellation for resume tests)\n"
      "  --scenario F   lifecycle: replay the scenario JSON in file F\n"
      "  --gen          lifecycle: generate the scenario from --seed and\n"
      "                 --steps instead of loading one\n"
      "  --steps K      lifecycle --gen: number of events (default 50)\n"
      "  --policy P     lifecycle start policy: warm | cold (default warm)\n"
      "  --step-deadline S  lifecycle: per-step wall-clock budget in\n"
      "                 seconds (0 = off; non-deterministic when it fires)\n"
      "  --scenario-out F  lifecycle: also write the scenario JSON to F\n"
      "  --list-strategies  print the registered strategy names\n"
      "  --log-level L  log threshold debug|info|warn|error|off (wins\n"
      "                 over the IDES_LOG environment variable)\n"
      "  --telemetry-dump  after the command, print the process telemetry\n"
      "                 snapshot (JSON) to stderr; counters never affect\n"
      "                 results\n"
      "  --out FILE     write schedule to FILE   (schedule command)\n"
      "  --model FILE   load an 'ides model v1' file instead of generating\n"
      "  --tmin T --tneed T --bneed B  future profile for --model runs");
}

bool parse(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int i = 2;
  // Positional sub-action (store ls / store verify).
  if (i < argc && argv[i][0] != '-') {
    args.action = argv[i];
    ++i;
  }
  while (i < argc) {
    const std::string flag = argv[i];
    // Valueless flags first.
    if (flag == "--json") {
      args.jsonOutput = true;
      ++i;
      continue;
    }
    if (flag == "--list-strategies") {
      args.listStrategies = true;
      ++i;
      continue;
    }
    if (flag == "--resume") {
      args.resume = true;
      ++i;
      continue;
    }
    if (flag == "--no-timing") {
      args.noTiming = true;
      ++i;
      continue;
    }
    if (flag == "--apply") {
      args.apply = true;
      ++i;
      continue;
    }
    if (flag == "--gen") {
      args.genScenario = true;
      ++i;
      continue;
    }
    if (flag == "--telemetry-dump") {
      args.telemetryDump = true;
      ++i;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", flag.c_str());
      return false;
    }
    const std::string value = argv[i + 1];
    i += 2;
    if (flag == "--nodes") {
      args.nodes = std::stoul(value);
    } else if (flag == "--existing") {
      args.existing = std::stoul(value);
    } else if (flag == "--current") {
      args.current = std::stoul(value);
    } else if (flag == "--seed") {
      args.seed = std::stoull(value);
    } else if (flag == "--strategy") {
      args.strategy = value;
    } else if (flag == "--sa-iters") {
      args.saIterations = std::stoi(value);
    } else if (flag == "--restarts") {
      args.restarts = std::stoi(value);
    } else if (flag == "--threads") {
      args.threads = std::stoi(value);
    } else if (flag == "--spec-workers") {
      args.specWorkers = std::stoi(value);
    } else if (flag == "--spec-depth") {
      args.specDepth = std::stoi(value);
    } else if (flag == "--suite") {
      args.suiteName = value;
    } else if (flag == "--shards") {
      args.shards = std::stoi(value);
    } else if (flag == "--scale") {
      args.scaleName = value;
    } else if (flag == "--store-dir") {
      args.storeDir = value;
    } else if (flag == "--serve") {
      args.serveDir = value;
    } else if (flag == "--worker") {
      args.workerDir = value;
    } else if (flag == "--lease-seconds") {
      args.leaseSeconds = std::stod(value);
    } else if (flag == "--cancel-after") {
      args.cancelAfter = std::stoi(value);
    } else if (flag == "--epoch") {
      args.gcEpoch = std::stoll(value);
    } else if (flag == "--older-than") {
      args.olderThan = value;
    } else if (flag == "--deadline") {
      args.deadlineSeconds = std::stod(value);
    } else if (flag == "--scenario") {
      args.scenarioFile = value;
    } else if (flag == "--scenario-out") {
      args.scenarioOut = value;
    } else if (flag == "--steps") {
      args.steps = std::stoi(value);
    } else if (flag == "--policy") {
      args.policyName = value;
    } else if (flag == "--log-level") {
      if (parseLogLevel(value, LogLevel::Off) == LogLevel::Off &&
          value != "off") {
        std::fprintf(stderr,
                     "--log-level %s: expected debug|info|warn|error|off\n",
                     value.c_str());
        return false;
      }
      args.logLevel = value;
    } else if (flag == "--step-deadline") {
      args.stepDeadlineSeconds = std::stod(value);
    } else if (flag == "--out") {
      args.outFile = value;
    } else if (flag == "--model") {
      args.modelFile = value;
    } else if (flag == "--tmin") {
      args.tmin = std::stoll(value);
    } else if (flag == "--tneed") {
      args.tneed = std::stoll(value);
    } else if (flag == "--bneed") {
      args.bneed = std::stoll(value);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

Suite makeSuite(const CliArgs& args) {
  if (!args.modelFile.empty()) {
    std::ifstream in(args.modelFile);
    if (!in) {
      throw std::invalid_argument("cannot open model file " +
                                  args.modelFile);
    }
    Suite suite{readModel(in), FutureProfile{}, args.seed, 1};
    const Time tmin =
        args.tmin > 0 ? args.tmin : std::max<Time>(1,
                                                   suite.system.hyperperiod() /
                                                       4);
    suite.profile = paperFutureProfile(
        tmin, args.tneed > 0 ? args.tneed : tmin / 4,
        args.bneed > 0 ? args.bneed : 64);
    return suite;
  }
  SuiteConfig cfg;
  cfg.nodeCount = args.nodes;
  cfg.existingProcesses = args.existing;
  cfg.currentProcesses = args.current;
  cfg.tneedOverride = 12000;
  std::fprintf(stderr, "generating suite (seed %llu)...\n",
               static_cast<unsigned long long>(args.seed));
  return buildSuite(cfg, args.seed);
}

DesignerOptions designerOptions(const CliArgs& args) {
  DesignerOptions opts;
  opts.sa.seed = args.seed;
  if (args.saIterations > 0) opts.sa.iterations = args.saIterations;
  opts.psa.threads = args.threads;
  opts.psa.restarts = args.restarts;
  // SA reads the chain-level speculation knobs; PSA auto-splits its thread
  // budget unless --spec-workers pins the per-chain worker count.
  if (args.specWorkers > 0) opts.sa.speculation.workers = args.specWorkers;
  if (args.specDepth > 0) opts.sa.speculation.maxDepth = args.specDepth;
  opts.psa.speculativeWorkers = args.specWorkers;
  return opts;
}

int cmdListStrategies() {
  for (const std::string& name : StrategyRegistry::builtin().names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmdStats(const CliArgs& args) {
  const Suite suite = makeSuite(args);
  std::fputs(statsReport(suite.system).c_str(), stdout);
  std::printf("future profile: Tmin=%lld tneed=%lld bneed=%lldB\n",
              static_cast<long long>(suite.profile.tmin),
              static_cast<long long>(suite.profile.tneed),
              static_cast<long long>(suite.profile.bneedBytes));
  return 0;
}

/// Registry-resolved strategy run with the optional --deadline stop token.
DesignResult runStrategy(IncrementalDesigner& designer, const CliArgs& args) {
  StopToken stop;
  RunContext context;
  if (args.deadlineSeconds > 0.0) {
    stop.setTimeout(args.deadlineSeconds);
    context.stop = &stop;
  }
  return designer.run(args.strategy, context);
}

/// --json: the daemon-identical path. Spec -> shared runDesignJob ->
/// deterministic JSON, so `ides_cli design --json` and a GET
/// /jobs/<id>/result for the same spec diff byte-equal (serve-e2e).
int cmdDesignJson(const CliArgs& args) {
  if (!args.modelFile.empty()) {
    std::fprintf(stderr, "--json supports generated suites only\n");
    return 2;
  }
  DesignJobSpec spec;
  spec.nodes = args.nodes;
  spec.existing = args.existing;
  spec.current = args.current;
  spec.seed = args.seed;
  spec.strategy = args.strategy;
  spec.saIterations = args.saIterations;
  spec.restarts = args.restarts;
  spec.threads = args.threads;
  spec.specWorkers = args.specWorkers;
  spec.specDepth = args.specDepth;

  StopToken stop;
  RunContext context;
  if (args.deadlineSeconds > 0.0) {
    stop.setTimeout(args.deadlineSeconds);
    context.stop = &stop;
  }
  const DesignJobResult result = runDesignJob(spec, context);
  std::fputs(designResultJson(result, /*timing=*/false).c_str(), stdout);
  return result.validationOk && result.result.feasible ? 0 : 1;
}

int cmdDesign(const CliArgs& args) {
  if (args.jsonOutput) return cmdDesignJson(args);
  const Suite suite = makeSuite(args);
  IncrementalDesigner designer(suite.system, suite.profile,
                               designerOptions(args));
  const DesignResult r = runStrategy(designer, args);
  std::printf("strategy: %s\nfeasible: %s\nobjective C: %.2f\n",
              r.strategyName.c_str(), r.feasible ? "yes" : "no",
              r.objective);
  if (r.stopped) std::puts("stopped: deadline/cancellation hit");
  std::printf("metrics: C1P=%.2f%% C1m=%.2f%% C2P=%lld C2m=%lldB\n",
              r.metrics.c1p, r.metrics.c1m,
              static_cast<long long>(r.metrics.c2p),
              static_cast<long long>(r.metrics.c2mBytes));
  std::printf("evaluations: %zu  runtime: %.3fs\n", r.evaluations,
              r.seconds);

  Schedule all;
  all.merge(designer.frozenSchedule());
  all.merge(r.schedule);
  std::vector<GraphId> graphs = suite.system.graphsOfKind(AppKind::Existing);
  const auto cur = suite.system.graphsOfKind(AppKind::Current);
  graphs.insert(graphs.end(), cur.begin(), cur.end());
  const ValidationReport report =
      validateSchedule(suite.system, all, graphs);
  std::printf("validation: %s\n", report.ok() ? "ok" : "FAILED");
  if (!report.ok()) std::fputs(report.summary().c_str(), stdout);
  return report.ok() && r.feasible ? 0 : 1;
}

int cmdSchedule(const CliArgs& args) {
  const Suite suite = makeSuite(args);
  IncrementalDesigner designer(suite.system, suite.profile,
                               designerOptions(args));
  const DesignResult r = runStrategy(designer, args);
  if (!r.feasible) {
    std::fputs("no feasible design\n", stderr);
    return 1;
  }
  Schedule all;
  all.merge(designer.frozenSchedule());
  all.merge(r.schedule);
  if (args.outFile.empty()) {
    writeSchedule(std::cout, suite.system, all);
  } else {
    std::ofstream out(args.outFile);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.outFile.c_str());
      return 1;
    }
    writeSchedule(out, suite.system, all);
    std::fprintf(stderr, "schedule written to %s\n", args.outFile.c_str());
  }
  return 0;
}

int cmdDot(const CliArgs& args) {
  const Suite suite = makeSuite(args);
  DotOptions opts;
  opts.application = suite.system.applicationsOfKind(AppKind::Current)
                         .front();
  writeDot(std::cout, suite.system, opts);
  return 0;
}

/// --older-than AGE: plain seconds or an s/m/h/d-suffixed count.
/// Throws std::invalid_argument on junk.
double parseAgeSeconds(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("--older-than: empty age");
  double multiplier = 1.0;
  std::string number = text;
  switch (number.back()) {
    case 'd': multiplier *= 24.0; [[fallthrough]];
    case 'h': multiplier *= 60.0; [[fallthrough]];
    case 'm': multiplier *= 60.0; [[fallthrough]];
    case 's': number.pop_back(); break;
    default: break;
  }
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(number, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != number.size() || value < 0.0) {
    throw std::invalid_argument("--older-than: bad age \"" + text +
                                "\" (want seconds or s/m/h/d suffix)");
  }
  return value * multiplier;
}

/// The store's reaper (`store gc`): dry run unless --apply; see
/// store/store_gc.h for the exact predicates and manifest protection.
int cmdStoreGc(const CliArgs& args) {
  StoreGcOptions options;
  options.apply = args.apply;
  options.epoch = args.gcEpoch;
  if (!args.olderThan.empty()) {
    options.olderThanSeconds = parseAgeSeconds(args.olderThan);
  }
  const StoreGcReport report = gcSweepStore(args.storeDir, options);
  std::fputs(storeGcText(report, options).c_str(), stdout);
  return 0;
}

/// Store maintenance (`store ls` / `store verify` / `store gc`). ls and
/// verify never mutate the store, so they are safe against a directory
/// live workers are filling; gc deletes only with --apply and never
/// touches records a live manifest references.
int cmdStore(const CliArgs& args) {
  if (args.action != "ls" && args.action != "verify" &&
      args.action != "gc") {
    std::fprintf(stderr,
                 "usage: ides_cli store <ls|verify|gc> --store-dir D\n");
    return 2;
  }
  if (args.storeDir.empty()) {
    std::fprintf(stderr, "store %s needs --store-dir DIR\n",
                 args.action.c_str());
    return 2;
  }
  if (args.action == "gc") return cmdStoreGc(args);
  const StoreAuditReport report = auditSweepStore(args.storeDir);
  if (args.action == "ls") {
    std::fputs(storeLsText(report).c_str(), stdout);
    return 0;
  }
  std::fputs(storeVerifyText(report).c_str(), stdout);
  // verify is the CI-able health check: anything bad fails the command.
  return report.badCount == 0 ? 0 : 1;
}

/// lifecycle: replay a scenario (loaded or generated), re-optimizing after
/// every event under the chosen start policy. Deterministic whenever the
/// per-step deadline is off and --no-timing renders the JSON.
int cmdLifecycle(const CliArgs& args) {
  if (args.scenarioFile.empty() == !args.genScenario) {
    std::fprintf(stderr,
                 "lifecycle needs exactly one of --scenario FILE or --gen\n");
    return 2;
  }

  LifecycleScenario scenario;
  if (!args.scenarioFile.empty()) {
    std::ifstream in(args.scenarioFile, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.scenarioFile.c_str());
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    scenario = parseScenario(text);
  } else {
    ScenarioConfig config;
    config.seed = args.seed;
    if (args.steps > 0) config.steps = args.steps;
    scenario = generateScenario(config);
  }
  if (!args.scenarioOut.empty()) {
    std::ofstream out(args.scenarioOut, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.scenarioOut.c_str());
      return 1;
    }
    out << scenarioJson(scenario);
    std::fprintf(stderr, "scenario written to %s\n",
                 args.scenarioOut.c_str());
  }

  LifecycleOptions options;
  options.strategy = args.strategy;
  options.policy = startPolicyFromString(args.policyName);
  options.designer = designerOptions(args);
  options.stepDeadlineSeconds = args.stepDeadlineSeconds;
  StopToken stop;
  if (args.deadlineSeconds > 0.0) {
    stop.setTimeout(args.deadlineSeconds);
    options.stop = &stop;
  }

  std::fprintf(stderr, "lifecycle: %d events, strategy=%s, policy=%s\n",
               scenario.config.steps, options.strategy.c_str(),
               toString(options.policy));
  const LifecycleReport report = runLifecycle(scenario, options);

  const std::string json = lifecycleReportJson(report, !args.noTiming);
  if (args.jsonOutput) {
    std::fputs(json.c_str(), stdout);
  } else {
    for (const LifecycleStep& step : report.steps) {
      std::printf("  [%3d] %-16s live=%zu/%zu %s C=%.2f%s\n", step.step,
                  toString(step.event), step.liveGraphs, step.liveProcesses,
                  step.warmStart ? "warm" : "cold",
                  step.cost, step.feasible ? "" : " [infeasible]");
    }
    std::printf(
        "steps: %zu  feasible: %zu  warm starts: %zu  median C: %.2f  "
        "runtime: %.3fs%s\n",
        report.steps.size(), report.feasibleSteps, report.warmStarts,
        report.medianCost, report.totalSeconds,
        report.stopped ? " (stopped)" : "");
  }
  if (!args.outFile.empty()) {
    std::ofstream out(args.outFile, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", args.outFile.c_str());
      return 1;
    }
    out << json;
    std::fprintf(stderr, "report written to %s\n", args.outFile.c_str());
  }
  return report.feasibleSteps > 0 ? 0 : 1;
}

/// This process's participant name in lease files: host + pid.
std::string workerName() {
  std::string name = buildProvenance().hostname;
#if defined(__unix__) || defined(__APPLE__)
  // += instead of chained + : avoids GCC's bogus -Wrestrict (PR105651).
  name += ':';
  name += std::to_string(static_cast<long>(getpid()));
#endif
  return name;
}

void printInstanceDone(const InstanceResult& r) {
  if (r.cached) {
    std::printf("  [%s] from store\n", r.id.c_str());
  } else if (r.outcome.hasReport) {
    std::printf("  [%s] C=%.2f (%.3fs)%s\n", r.id.c_str(),
                r.outcome.report.objective, r.outcome.report.seconds,
                r.outcome.report.stopped ? " [stopped]" : "");
  } else {
    std::printf("  [%s] done\n", r.id.c_str());
  }
}

/// Renders and publishes BENCH_sweep_<suite>.json; 0 on success.
int publishSweepJson(const std::string& suiteArg, const BatchReport& report,
                     const SweepScale& scale, bool noTiming) {
  BatchJsonOptions json;
  json.scale = scale.name;
  json.timing = !noTiming;
  const std::string name = "sweep_" + suiteArg;
  if (!writeBenchJsonFile(name, batchReportJson(name, report, json))) {
    std::fprintf(stderr, "cannot write %s\n", benchJsonPath(name).c_str());
    return 1;
  }
  std::printf("machine-readable results: %s\n",
              benchJsonPath(name).c_str());
  return 0;
}

/// The single-process path (optionally store-backed and resumable).
int cmdSweep(const CliArgs& args) {
  if (args.suiteName.empty()) {
    std::string known;
    for (const std::string& n : sweepNames()) {
      known += known.empty() ? n : ", " + n;
    }
    std::fprintf(stderr, "sweep needs --suite NAME (available: %s)\n",
                 known.c_str());
    return 2;
  }
  if (args.resume && args.storeDir.empty()) {
    std::fprintf(stderr, "--resume needs --store-dir DIR\n");
    return 2;
  }
  const SweepScale scale = args.scaleName.empty()
                               ? sweepScale()
                               : sweepScaleNamed(args.scaleName);
  const InstanceSuite suite = namedSweep(args.suiteName, scale);
  std::printf("sweep %s: %zu instances, scale=%s, shards=%s\n",
              suite.name().c_str(), suite.size(), scale.name.c_str(),
              args.shards > 0 ? std::to_string(args.shards).c_str()
                              : "all cores");

  StopToken stop;
  BatchOptions options;
  options.shards = args.shards;
  if (args.deadlineSeconds > 0.0) {
    stop.setTimeout(args.deadlineSeconds);
    options.stop = &stop;
  }
  // --cancel-after must be able to fire even without --deadline, so the
  // token is wired in up front; onInstanceDone is serialized across shards.
  if (args.cancelAfter > 0) options.stop = &stop;
  std::size_t done = 0;
  options.onInstanceDone = [&](const InstanceResult& r) {
    printInstanceDone(r);
    if (args.cancelAfter > 0 &&
        ++done >= static_cast<std::size_t>(args.cancelAfter)) {
      stop.requestStop();
    }
  };

  std::optional<SweepStore> store;
  std::optional<SweepStoreCache> cache;
  if (!args.storeDir.empty()) {
    store.emplace(args.storeDir);
    cache.emplace(*store, suite.name(), args.resume);
    options.cache = &*cache;
  }

  const BatchReport report = runBatch(suite, options);
  std::printf("completed %zu/%zu instances", report.completed,
              report.results.size());
  if (report.cacheHits > 0) {
    std::printf(" (%zu from store)", report.cacheHits);
  }
  std::printf("%s\n", report.stopped ? " (stopped)" : "");

  return publishSweepJson(args.suiteName, report, scale, args.noTiming);
}

/// Flags of the single-process path that the serve/worker modes do not
/// honor; silently ignoring them would misrepresent what ran.
int rejectUnsupportedQueueFlags(const CliArgs& args, const char* mode) {
  const char* offending = nullptr;
  if (args.shards != 0) {
    offending = "--shards (one claim at a time; start more workers instead)";
  }
  if (!args.storeDir.empty()) {
    offending = "--store-dir (the serve/worker directory IS the store)";
  }
  if (args.resume) {
    offending = "--resume (a served sweep always reuses its records)";
  }
  if (args.cancelAfter > 0) offending = "--cancel-after";
  if (!args.serveDir.empty() && !args.workerDir.empty()) {
    offending = "--serve together with --worker";
  }
  if (offending != nullptr) {
    std::fprintf(stderr, "sweep %s does not support %s\n", mode, offending);
    return 2;
  }
  return 0;
}

/// Coordinator: publish the manifest, participate in the queue, wait for
/// all records, merge in canonical order.
int cmdSweepServe(const CliArgs& args) {
  if (const int rc = rejectUnsupportedQueueFlags(args, "--serve")) return rc;
  if (args.suiteName.empty()) {
    std::fprintf(stderr, "sweep --serve needs --suite NAME\n");
    return 2;
  }
  const SweepScale scale = args.scaleName.empty()
                               ? sweepScale()
                               : sweepScaleNamed(args.scaleName);
  const InstanceSuite suite = namedSweep(args.suiteName, scale);
  SweepStore store(args.serveDir);
  WorkQueue queue(args.serveDir, workerName(), args.leaseSeconds);
  queue.clearStop();  // a sentinel from a previous cancelled run is stale
  const SweepManifest manifest = makeManifest(args.suiteName, scale, suite);
  writeManifest(args.serveDir, manifest);
  std::printf(
      "serving sweep %s at %s: %zu instances, scale=%s\n"
      "join with: ides_cli sweep --worker %s\n",
      suite.name().c_str(), args.serveDir.c_str(), suite.size(),
      scale.name.c_str(), args.serveDir.c_str());

  StopToken stop;
  if (args.deadlineSeconds > 0.0) stop.setTimeout(args.deadlineSeconds);

  const auto onDone = [](const WorkItem& item, const InstanceOutcome&) {
    std::printf("  [%s] done (this process)\n", item.id.c_str());
  };
  bool stopped = false;
  while (true) {
    const QueueRunStats stats =
        runQueuedInstances(suite, manifest, store, queue, &stop, onDone);
    if (stats.stopped || stop.stopRequested()) {
      stopped = true;
      queue.requestStop();  // tell the workers to wind down too
      break;
    }
    if (queue.allDone(store, manifest)) break;
    // Peers hold live leases; wait for their records (or lease expiry).
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  BatchReport report = reportFromStore(suite, store);
  report.stopped = report.stopped || stopped;
  std::printf("merged %zu/%zu records from %s%s\n", report.completed,
              report.results.size(), args.serveDir.c_str(),
              report.stopped ? " (stopped)" : "");
  return publishSweepJson(args.suiteName, report, scale, args.noTiming);
}

/// HTTP worker: join a sweep coordinated by ides_serve. Same loop shape
/// as the directory worker, but claims/renewals/records travel the
/// network and a vanished coordinator ends the worker nonzero with a
/// printed reason instead of hanging.
int cmdSweepWorkerHttp(const CliArgs& args) {
  if (const int rc = rejectUnsupportedQueueFlags(args, "--worker")) return rc;
  if (!args.suiteName.empty() || !args.scaleName.empty()) {
    std::fprintf(stderr,
                 "sweep --worker reads the suite and scale from the served "
                 "manifest; drop --suite/--scale\n");
    return 2;
  }
  StopToken stop;
  if (args.deadlineSeconds > 0.0) stop.setTimeout(args.deadlineSeconds);

  RemoteWorkQueue remote(args.workerDir, workerName(), args.leaseSeconds);
  const std::optional<SweepManifest> manifest =
      remote.fetchManifest(/*waitSeconds=*/30.0, &stop);
  if (!manifest.has_value()) {
    if (remote.failed()) {
      std::fprintf(stderr, "%s\n", remote.failureReason().c_str());
    }
    return 1;
  }
  const InstanceSuite suite = suiteFromManifest(*manifest);
  std::printf("worker %s joined sweep %s at %s (%zu instances)\n",
              remote.workerId().c_str(), suite.name().c_str(),
              args.workerDir.c_str(), suite.size());

  std::size_t executed = 0;
  const auto onDone = [&](const WorkItem& item, const InstanceOutcome&) {
    std::printf("  [%s] done\n", item.id.c_str());
    ++executed;
  };
  while (true) {
    const QueueRunStats stats =
        runSweepParticipant(suite, remote, &stop, onDone);
    if (stats.failed) {
      std::fprintf(stderr, "worker giving up: %s\n", stats.error.c_str());
      return 1;
    }
    if (stats.stopped || stop.stopRequested()) {
      std::printf("worker stopping (%zu instances executed)\n", executed);
      return 0;
    }
    if (remote.allDone()) break;
    if (remote.failed()) {
      std::fprintf(stderr, "worker giving up: %s\n",
                   remote.failureReason().c_str());
      return 1;
    }
    // Peers hold live leases; poll until their records land.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("sweep complete (%zu instances executed here)\n", executed);
  return 0;
}

/// Worker: wait for the manifest, rebuild + verify the suite, then claim
/// and run instances until the sweep is complete (or a stop lands).
int cmdSweepWorker(const CliArgs& args) {
  if (const int rc = rejectUnsupportedQueueFlags(args, "--worker")) return rc;
  if (!args.suiteName.empty() || !args.scaleName.empty()) {
    std::fprintf(stderr,
                 "sweep --worker reads the suite and scale from the served "
                 "manifest; drop --suite/--scale\n");
    return 2;
  }
  std::optional<SweepManifest> manifest;
  // The coordinator may not have published yet; poll briefly.
  for (int attempt = 0; attempt < 150; ++attempt) {
    manifest = readManifest(args.workerDir);
    if (manifest.has_value()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  if (!manifest.has_value()) {
    std::fprintf(stderr, "no manifest at %s (is a --serve running?)\n",
                 args.workerDir.c_str());
    return 1;
  }
  const InstanceSuite suite = suiteFromManifest(*manifest);
  SweepStore store(args.workerDir);
  WorkQueue queue(args.workerDir, workerName(), args.leaseSeconds);
  std::printf("worker %s joined sweep %s (%zu instances)\n",
              queue.workerId().c_str(), suite.name().c_str(), suite.size());

  StopToken stop;
  if (args.deadlineSeconds > 0.0) stop.setTimeout(args.deadlineSeconds);

  std::size_t executed = 0;
  const auto onDone = [&](const WorkItem& item, const InstanceOutcome&) {
    std::printf("  [%s] done\n", item.id.c_str());
    ++executed;
  };
  while (true) {
    const QueueRunStats stats =
        runQueuedInstances(suite, *manifest, store, queue, &stop, onDone);
    if (stats.stopped || stop.stopRequested() || queue.stopRequested()) {
      std::printf("worker stopping (%zu instances executed)\n", executed);
      return 0;
    }
    if (queue.allDone(store, *manifest)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("sweep complete (%zu instances executed here)\n", executed);
  return 0;
}

}  // namespace

namespace {

int dispatch(const CliArgs& args) {
  if (args.listStrategies || args.command == "list-strategies") {
    return cmdListStrategies();
  }
  if (args.command == "stats") return cmdStats(args);
  if (args.command == "design") return cmdDesign(args);
  if (args.command == "schedule") return cmdSchedule(args);
  if (args.command == "dot") return cmdDot(args);
  if (args.command == "store") return cmdStore(args);
  if (args.command == "lifecycle") return cmdLifecycle(args);
  if (args.command == "sweep") {
    if (args.workerDir.rfind("http://", 0) == 0) {
      return cmdSweepWorkerHttp(args);
    }
    if (!args.workerDir.empty()) return cmdSweepWorker(args);
    if (!args.serveDir.empty()) return cmdSweepServe(args);
    return cmdSweep(args);
  }
  usage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  try {
    if (!parse(argc, argv, args)) {
      usage();
      return 2;
    }
    // The flag wins over IDES_LOG (the threshold's env default).
    if (!args.logLevel.empty()) {
      setLogThreshold(parseLogLevel(args.logLevel, LogLevel::Warn));
    }
    const int rc = dispatch(args);
    // To stderr so it composes with --json (results stay alone on stdout).
    if (args.telemetryDump) {
      std::fprintf(stderr, "%s\n", telemetry().jsonSnapshot().c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
