// Side-by-side comparison of the three mapping strategies on one instance,
// including the per-criterion breakdown of the objective C — a compact
// version of what the figure benches sweep.
//
// Usage:  ./build/examples/strategy_comparison [current_processes] [seed]
// Defaults: 240 processes, seed 1 (paper-scale 10-node platform).
#include <cstdio>
#include <cstdlib>

#include "core/future_fit.h"
#include "core/incremental_designer.h"
#include "model/system_model.h"
#include "tgen/benchmark_suite.h"

int main(int argc, char** argv) {
  using namespace ides;

  const std::size_t current =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 240;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  SuiteConfig cfg;
  cfg.nodeCount = 10;
  cfg.existingProcesses = 400;
  cfg.currentProcesses = current;
  cfg.futureAppCount = 4;
  cfg.futureProcesses = 80;
  cfg.tneedOverride = 12000;
  std::printf("building suite: 10 nodes, 400 existing + %zu current "
              "processes (seed %llu)...\n",
              current, static_cast<unsigned long long>(seed));
  const Suite suite = buildSuite(cfg, seed);
  const SystemModel& sys = suite.system;

  DesignerOptions opts;
  opts.sa.iterations = 8000;
  IncrementalDesigner designer(sys, suite.profile, opts);

  std::printf("\nprofile: Tmin=%lld tneed=%lld bneed=%lldB\n",
              static_cast<long long>(suite.profile.tmin),
              static_cast<long long>(suite.profile.tneed),
              static_cast<long long>(suite.profile.bneedBytes));
  std::printf(
      "\n%-3s %10s %8s %8s %10s %10s %9s %10s %8s\n", "", "C", "C1P%",
      "C1m%", "C2P", "C2m[B]", "evals", "seconds", "fut-fit");

  for (Strategy s : {Strategy::AdHoc, Strategy::MappingHeuristic,
                     Strategy::SimulatedAnnealing}) {
    const DesignResult r = designer.run(s);
    int fits = 0, total = 0;
    const PlatformState after = designer.stateWith(r);
    for (ApplicationId app : sys.applicationsOfKind(AppKind::Future)) {
      fits += tryMapFutureApplication(sys, app, after).fits;
      ++total;
    }
    std::printf("%-3s %10.2f %8.2f %8.2f %10lld %10lld %9zu %10.3f %5d/%d\n",
                toString(s), r.objective, r.metrics.c1p, r.metrics.c1m,
                static_cast<long long>(r.metrics.c2p),
                static_cast<long long>(r.metrics.c2mBytes), r.evaluations,
                r.seconds, fits, total);
  }

  std::printf(
      "\nReading the table: C2P is the guaranteed processor time per Tmin\n"
      "window (must reach tneed); AH leaves it starved, MH/SA protect it\n"
      "at a fraction of SA's runtime. fut-fit counts how many candidate\n"
      "future applications can still be mapped afterwards.\n");
  return 0;
}
