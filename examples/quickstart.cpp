// Quickstart: the full incremental-design flow on a small generated system.
//
//   1. Build a benchmark suite: a 4-node TTP architecture with a frozen base
//      of existing applications, a current application, and one candidate
//      future application.
//   2. Run the three mapping strategies (AH / MH / SA) on the current
//      application and print their design metrics and objective C.
//   3. Check whether the future application still fits after each strategy.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/future_fit.h"
#include "core/incremental_designer.h"
#include "tgen/benchmark_suite.h"

int main() {
  using namespace ides;

  // A laptop-sized but *loaded* instance: 4 nodes at ~60% utilization, so
  // the incremental-design criteria actually bite.
  SuiteConfig cfg;
  cfg.nodeCount = 4;
  cfg.basePeriod = 6000;
  cfg.tmin = 1500;
  cfg.existingProcesses = 60;
  cfg.currentProcesses = 40;
  cfg.futureAppCount = 1;
  cfg.futureProcesses = 8;
  cfg.futureGraphSize = 8;
  // Characterize the most demanding future application with headroom above
  // its raw CPU demand (fragmentation, bus waits): 2x the expected need.
  cfg.tneedOverride = 2 * 8 * 69;
  Suite suite = buildSuite(cfg, /*seed=*/42);
  const SystemModel& sys = suite.system;

  std::printf("system: %zu nodes, %zu applications, %zu processes, %zu "
              "messages, hyperperiod %lld\n",
              sys.architecture().nodeCount(), sys.applications().size(),
              sys.processes().size(), sys.messages().size(),
              static_cast<long long>(sys.hyperperiod()));
  std::printf("future profile: Tmin=%lld tneed=%lld bneed=%lldB\n\n",
              static_cast<long long>(suite.profile.tmin),
              static_cast<long long>(suite.profile.tneed),
              static_cast<long long>(suite.profile.bneedBytes));

  IncrementalDesigner designer(sys, suite.profile);
  const ApplicationId futureApp =
      sys.applicationsOfKind(AppKind::Future).front();

  for (Strategy s : {Strategy::AdHoc, Strategy::MappingHeuristic,
                     Strategy::SimulatedAnnealing}) {
    const DesignResult r = designer.run(s);
    const FutureFitResult fit =
        tryMapFutureApplication(sys, futureApp, designer.stateWith(r));
    std::printf(
        "%-2s: feasible=%d  C=%8.2f  C1P=%5.1f%%  C1m=%5.1f%%  C2P=%6lld  "
        "C2m=%5lldB  evals=%-6zu  %.3fs  future-fits=%d\n",
        toString(s), r.feasible, r.objective, r.metrics.c1p, r.metrics.c1m,
        static_cast<long long>(r.metrics.c2p),
        static_cast<long long>(r.metrics.c2mBytes), r.evaluations, r.seconds,
        fit.fits);
  }
  return 0;
}
